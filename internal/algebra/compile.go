package algebra

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/logic"
)

// Compile translates a safe-range calculus formula into an algebra plan
// whose columns are the formula's free variables (sorted). The translation
// follows the classical recipe:
//
//   - database atoms scan their relation, select repeated variables and
//     constants, and project to variables;
//   - conjunctions natural-join their positive parts, then apply equality
//     conjuncts (as selections or column extensions), then domain-predicate
//     conjuncts as selections, then negated parts as guarded differences
//     E − (E ⋈ G);
//   - disjunctions with equal free variables become unions;
//   - ∃x projects x away.
//
// Universal quantifiers are handled by the classical ¬∃¬ rewrite applied
// internally: a conjunct ∀x φ compiles as the guarded difference for
// ¬∃x ¬φ against the conjunction's generators (correlated bodies are
// compiled seeded with the guard plan, so free variables of φ ranged by
// the surrounding conjunction stay ranged). Compile therefore accepts the
// same fragment whether the caller writes ∀ or ¬∃¬; only genuinely
// non-safe-range input — a universal or negation whose free variables no
// generator ranges — is rejected with an explanatory error.
func Compile(scheme *db.Scheme, f *logic.Formula) (Expr, error) {
	c := &compiler{scheme: scheme}
	return c.compile(logic.NNF(f))
}

type compiler struct {
	scheme *db.Scheme
	tmp    int
}

func (c *compiler) fresh() string {
	c.tmp++
	return fmt.Sprintf("_t%d", c.tmp)
}

func (c *compiler) compile(f *logic.Formula) (Expr, error) {
	switch f.Kind {
	case logic.FTrue:
		return &Lit{Cols: nil, Rows: [][]string{{}}}, nil
	case logic.FFalse:
		return &Lit{Cols: nil, Rows: nil}, nil
	case logic.FAtom:
		return c.compileAtom(f)
	case logic.FAnd:
		return c.compileAnd(f.Sub)
	case logic.FOr:
		return c.compileOr(f.Sub)
	case logic.FExists:
		inner, err := c.compile(f.Sub[0])
		if err != nil {
			return nil, err
		}
		cols := removeCol(inner.Columns(), f.Var)
		return &Project{In: inner, Cols: cols}, nil
	case logic.FNot, logic.FForall:
		// A bare negation or universal compiles as a one-conjunct
		// conjunction: the guarded-difference machinery admits it when it is
		// closed (guard = the empty-schema unit row) and produces the
		// explanatory unguarded-variable error otherwise.
		return c.compileAnd([]*logic.Formula{f})
	}
	return nil, fmt.Errorf("algebra: cannot compile %v", f)
}

// compileAtom handles a positive atom in relation position.
func (c *compiler) compileAtom(f *logic.Formula) (Expr, error) {
	arity, isDB := c.scheme.Relations[f.Pred]
	if !isDB {
		return nil, fmt.Errorf("algebra: atom %v does not range its variables (domain predicates select, they do not generate)", f)
	}
	if len(f.Args) != arity {
		return nil, fmt.Errorf("algebra: %s expects %d arguments, got %d", f.Pred, arity, len(f.Args))
	}
	cols := make([]string, arity)
	var conds []Cond
	seen := map[string]string{} // variable -> first column holding it
	var keep []string
	for i, t := range f.Args {
		switch t.Kind {
		case logic.TVar:
			if first, dup := seen[t.Name]; dup {
				col := c.fresh()
				cols[i] = col
				conds = append(conds, CondEq{A: ColArg(col), B: ColArg(first)})
			} else {
				cols[i] = t.Name
				seen[t.Name] = t.Name
				keep = append(keep, t.Name)
			}
		case logic.TConst:
			col := c.fresh()
			cols[i] = col
			conds = append(conds, CondEq{A: ColArg(col), B: ConstArg(t.Name)})
		default:
			return nil, fmt.Errorf("algebra: function terms in database atoms are not supported: %v", t)
		}
	}
	var e Expr = &Base{Rel: f.Pred, Cols: cols}
	if len(conds) > 0 {
		e = &Select{In: e, Cond: CondAnd{Cs: conds}}
	}
	return &Project{In: e, Cols: logic.SortedUnique(keep)}, nil
}

// compileAnd splits a conjunction into generators (positive DB-rooted
// subformulas), equalities, domain-predicate selections, and guarded
// negations. Universal conjuncts ∀x φ join the negations as ∃x ¬φ — the
// ¬∃¬ rewrite the doc comment on Compile describes.
func (c *compiler) compileAnd(subs []*logic.Formula) (Expr, error) {
	return c.compileAndFrom(nil, subs)
}

// compileAndFrom is compileAnd seeded with an optional already-compiled
// guard plan whose columns count as ranged: the correlated case of a
// negation or universal body, where the surrounding conjunction ranges
// variables the body mentions free.
func (c *compiler) compileAndFrom(seed Expr, subs []*logic.Formula) (Expr, error) {
	var generators []*logic.Formula
	var equalities []*logic.Formula
	var domainSel []*logic.Formula // positive or negated domain atoms
	var negations []*logic.Formula // negated DB-rooted subformulas

	for _, s := range subs {
		switch {
		case s.Kind == logic.FAtom && s.IsEq():
			equalities = append(equalities, s)
		case s.Kind == logic.FAtom:
			if _, isDB := c.scheme.Relations[s.Pred]; isDB {
				generators = append(generators, s)
			} else {
				domainSel = append(domainSel, s)
			}
		case s.Kind == logic.FNot && s.Sub[0].Kind == logic.FAtom && s.Sub[0].IsEq():
			domainSel = append(domainSel, s)
		case s.Kind == logic.FNot && s.Sub[0].Kind == logic.FAtom:
			if _, isDB := c.scheme.Relations[s.Sub[0].Pred]; isDB {
				negations = append(negations, s.Sub[0])
			} else {
				domainSel = append(domainSel, s)
			}
		case s.Kind == logic.FNot:
			negations = append(negations, s.Sub[0])
		case s.Kind == logic.FForall:
			// ∀x φ ≡ ¬∃x ¬φ: a guarded difference against the generators.
			negations = append(negations, logic.Exists(s.Var, logic.NNF(logic.Not(s.Sub[0]))))
		default:
			generators = append(generators, s)
		}
	}

	// Generators, to a fixpoint: each compiles standalone when it is
	// self-ranged; one that is not (a disjunction or quantified body
	// mentioning variables other conjuncts range) retries seeded with the
	// plan built so far, so correlated subformulas compile once their
	// guards are in place.
	plan := seed
	pendingGens := append([]*logic.Formula(nil), generators...)
	for len(pendingGens) > 0 {
		progressed := false
		var still []*logic.Formula
		var lastErr error
		for _, g := range pendingGens {
			e, err := c.compile(g)
			if err != nil && plan != nil {
				e, err = c.compileSeeded(plan, g)
			}
			if err != nil {
				lastErr = err
				still = append(still, g)
				continue
			}
			if plan == nil {
				plan = e
			} else {
				plan = &Join{L: plan, R: e}
			}
			progressed = true
		}
		if !progressed {
			return nil, lastErr
		}
		pendingGens = still
	}
	if plan == nil {
		plan = &Lit{Cols: nil, Rows: [][]string{{}}}
	}

	// Equalities, to a fixpoint: each either selects (both sides available),
	// extends (one variable side available), or introduces a constant
	// column.
	pending := append([]*logic.Formula(nil), equalities...)
	for len(pending) > 0 {
		progressed := false
		var still []*logic.Formula
		for _, eq := range pending {
			next, ok, err := c.applyEquality(plan, eq)
			if err != nil {
				return nil, err
			}
			if ok {
				plan = next
				progressed = true
			} else {
				still = append(still, eq)
			}
		}
		if !progressed {
			return nil, fmt.Errorf("algebra: equalities %v leave variables unranged", still)
		}
		pending = still
	}

	// Domain selections.
	for _, s := range domainSel {
		cond, err := c.atomCond(s, plan.Columns())
		if err != nil {
			return nil, err
		}
		plan = &Select{In: plan, Cond: cond}
	}

	// Guarded negations: E − (E ⋈ G), requiring free(G) ⊆ cols(E). A body
	// that does not compile standalone (its free variables are ranged by
	// the conjunction, not by itself) compiles seeded with the plan as
	// guard; a free variable nothing ranges stays an error.
	for _, n := range negations {
		have := map[string]bool{}
		for _, col := range plan.Columns() {
			have[col] = true
		}
		for _, v := range n.FreeVars() {
			if !have[v] {
				return nil, fmt.Errorf("algebra: negation of %v is unguarded on %q", n, v)
			}
		}
		g, err := c.compile(n)
		if err != nil {
			g, err = c.compileSeeded(plan, n)
			if err != nil {
				return nil, err
			}
		}
		plan = &Diff{L: plan, R: &Project{In: &Join{L: plan, R: g}, Cols: plan.Columns()}}
	}
	return plan, nil
}

// compileSeeded compiles a formula in a context where the columns of an
// already-compiled guard plan are ranged: conjunctions start from the
// seed, disjuncts union over it (which makes their columns uniform), and
// anything else becomes a one-conjunct seeded conjunction so domain
// predicates select over the seed.
func (c *compiler) compileSeeded(seed Expr, f *logic.Formula) (Expr, error) {
	switch f.Kind {
	case logic.FExists:
		// A bound variable that collides with a seed column would join
		// against the guard instead of quantifying independently — rename
		// it before compiling the body.
		v, body := f.Var, f.Sub[0]
		for _, col := range seed.Columns() {
			if col == v {
				nv := freshAvoiding(v, seed.Columns(), body)
				body = logic.Subst(body, v, logic.Var(nv))
				v = nv
				break
			}
		}
		inner, err := c.compileSeeded(seed, body)
		if err != nil {
			return nil, err
		}
		return &Project{In: inner, Cols: removeCol(inner.Columns(), v)}, nil
	case logic.FAnd:
		return c.compileAndFrom(seed, f.Sub)
	case logic.FOr:
		var plan Expr
		for _, s := range f.Sub {
			e, err := c.compileSeeded(seed, s)
			if err != nil {
				return nil, err
			}
			if plan == nil {
				plan = e
				continue
			}
			if !sameCols(plan.Columns(), e.Columns()) {
				return nil, fmt.Errorf("algebra: disjuncts with different free variables (%v vs %v) are not safe-range",
					plan.Columns(), e.Columns())
			}
			plan = &Union{L: plan, R: e}
		}
		if plan == nil {
			return &Lit{Cols: nil, Rows: nil}, nil
		}
		return plan, nil
	default:
		return c.compileAndFrom(seed, []*logic.Formula{f})
	}
}

// applyEquality incorporates one equality conjunct into the plan, if
// possible at this stage.
func (c *compiler) applyEquality(plan Expr, eq *logic.Formula) (Expr, bool, error) {
	have := map[string]bool{}
	for _, col := range plan.Columns() {
		have[col] = true
	}
	a, b := eq.Args[0], eq.Args[1]
	avail := func(t logic.Term) bool {
		return t.Kind == logic.TConst || (t.Kind == logic.TVar && have[t.Name])
	}
	arg := func(t logic.Term) Arg {
		if t.Kind == logic.TConst {
			return ConstArg(t.Name)
		}
		return ColArg(t.Name)
	}
	if a.Kind == logic.TApp || b.Kind == logic.TApp {
		return nil, false, fmt.Errorf("algebra: function terms are not supported in equalities: %v", eq)
	}
	switch {
	case avail(a) && avail(b):
		return &Select{In: plan, Cond: CondEq{A: arg(a), B: arg(b)}}, true, nil
	case avail(a) && b.Kind == logic.TVar:
		if a.Kind == logic.TVar {
			return &Extend{In: plan, NewCol: b.Name, FromCol: a.Name}, true, nil
		}
		// b := constant a — a one-row literal joined in.
		return &Join{L: plan, R: &Lit{Cols: []string{b.Name}, Rows: [][]string{{a.Name}}}}, true, nil
	case avail(b) && a.Kind == logic.TVar:
		if b.Kind == logic.TVar {
			return &Extend{In: plan, NewCol: a.Name, FromCol: b.Name}, true, nil
		}
		return &Join{L: plan, R: &Lit{Cols: []string{a.Name}, Rows: [][]string{{b.Name}}}}, true, nil
	}
	return nil, false, nil
}

// atomCond renders a (possibly negated) atom as a selection condition over
// available columns.
func (c *compiler) atomCond(f *logic.Formula, cols []string) (Cond, error) {
	atom, positive := logic.LiteralAtom(f)
	have := map[string]bool{}
	for _, col := range cols {
		have[col] = true
	}
	args := make([]Arg, len(atom.Args))
	for i, t := range atom.Args {
		switch t.Kind {
		case logic.TVar:
			if !have[t.Name] {
				return nil, fmt.Errorf("algebra: selection %v on unranged variable %q", f, t.Name)
			}
			args[i] = ColArg(t.Name)
		case logic.TConst:
			args[i] = ConstArg(t.Name)
		default:
			return nil, fmt.Errorf("algebra: function terms in selections are not supported: %v", t)
		}
	}
	var cond Cond
	if atom.IsEq() {
		cond = CondEq{A: args[0], B: args[1]}
	} else {
		cond = CondPred{Pred: atom.Pred, Args: args}
	}
	if !positive {
		cond = CondNot{C: cond}
	}
	return cond, nil
}

// compileOr unions disjuncts with identical free variables.
func (c *compiler) compileOr(subs []*logic.Formula) (Expr, error) {
	var plan Expr
	for _, s := range subs {
		e, err := c.compile(s)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			plan = e
			continue
		}
		if !sameCols(plan.Columns(), e.Columns()) {
			return nil, fmt.Errorf("algebra: disjuncts with different free variables (%v vs %v) are not safe-range",
				plan.Columns(), e.Columns())
		}
		plan = &Union{L: plan, R: e}
	}
	if plan == nil {
		return &Lit{Cols: nil, Rows: nil}, nil
	}
	return plan, nil
}

// freshAvoiding returns a variable name derived from hint that collides
// neither with the given columns nor with any variable (free or bound)
// of f.
func freshAvoiding(hint string, cols []string, f *logic.Formula) string {
	used := map[string]bool{}
	for _, c := range cols {
		used[c] = true
	}
	for _, v := range f.FreeVars() {
		used[v] = true
	}
	f.Walk(func(g *logic.Formula) {
		if g.Kind == logic.FExists || g.Kind == logic.FForall {
			used[g.Var] = true
		}
	})
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s_%d", hint, i)
		if !used[name] {
			return name
		}
	}
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if !set[c] {
			return false
		}
	}
	return true
}

func removeCol(cols []string, name string) []string {
	var out []string
	for _, c := range cols {
		if c != name {
			out = append(out, c)
		}
	}
	return out
}
