// Package algebra implements a relational algebra — the evaluation backend
// Codd's relational completeness theorem pairs with the calculus — and a
// compiler from safe-range calculus formulas to algebra expressions.
//
// The paper's positive syntaxes (active-domain restriction, finitization,
// safe range) matter in practice because their members evaluate by plain
// algebra plans like the ones here: every safe-range query compiles, every
// compiled plan computes the natural-semantics answer, and tests cross-check
// plans against the calculus evaluator.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/domain"
)

// Ctx supplies an expression evaluation with a database state and the
// domain interpretation (for constants and domain predicates).
type Ctx struct {
	St  *db.State
	Dom domain.Domain
}

// constValue resolves a constant name: database constants through the
// state, everything else through the domain.
func (c *Ctx) constValue(name string) (domain.Value, error) {
	if c.St.Scheme().HasConstant(name) {
		return c.St.Constant(name)
	}
	return c.Dom.ConstValue(name)
}

// Table is a named-column relation, the value of an algebra expression.
type Table struct {
	Cols []string
	rows map[string][]domain.Value
	// sorted is an optional prebuilt Rows() snapshot, aligned with rows;
	// it is shared by memoized base tables and dropped on mutation.
	sorted [][]domain.Value
	// shared marks rows (and sorted) as borrowed from a state memo: the
	// first Add copies them instead of mutating the shared view.
	shared bool
}

// NewTable returns an empty table with the given columns.
func NewTable(cols []string) *Table {
	return &Table{Cols: append([]string(nil), cols...), rows: map[string][]domain.Value{}}
}

// Add inserts a row (copied).
func (t *Table) Add(row []domain.Value) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("algebra: row width %d, table width %d", len(row), len(t.Cols))
	}
	if t.shared {
		rows := make(map[string][]domain.Value, len(t.rows)+1)
		for k, v := range t.rows {
			rows[k] = v
		}
		t.rows = rows
		t.shared = false
	}
	t.sorted = nil
	t.rows[db.Tuple(row).Key()] = append([]domain.Value(nil), row...)
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the rows sorted by key. Callers must not mutate the
// returned rows (they alias the table's storage, as they always have).
func (t *Table) Rows() [][]domain.Value {
	if t.sorted != nil {
		return t.sorted
	}
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]domain.Value, len(keys))
	for i, k := range keys {
		out[i] = t.rows[k]
	}
	return out
}

// Has reports row membership.
func (t *Table) Has(row []domain.Value) bool {
	_, ok := t.rows[db.Tuple(row).Key()]
	return ok
}

// colIndex maps column names to positions.
func (t *Table) colIndex() map[string]int {
	idx := make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		idx[c] = i
	}
	return idx
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("(" + strings.Join(t.Cols, ", ") + ")")
	for _, row := range t.Rows() {
		b.WriteString(" " + db.Tuple(row).String())
	}
	return b.String()
}

// Expr is a relational algebra expression.
type Expr interface {
	// Columns returns the output column names in order.
	Columns() []string
	// Eval computes the expression's value.
	Eval(ctx *Ctx) (*Table, error)
	// String renders the plan.
	String() string
}

// Base scans a database relation, naming its columns.
type Base struct {
	Rel  string
	Cols []string
}

// Columns implements Expr.
func (b *Base) Columns() []string { return b.Cols }

// baseSnapshot is a relation materialized as table storage, memoized on
// the state so every query over an unchanged state shares one copy.
type baseSnapshot struct {
	rows   map[string][]domain.Value
	sorted [][]domain.Value
}

// Eval implements Expr. The row storage is memoized per relation on the
// state (column names differ per query, the rows do not), so a workload
// that runs many queries against one state — a batch request, a probe
// loop — materializes and sorts each base relation once. The returned
// table copies the shared storage on its first Add.
func (b *Base) Eval(ctx *Ctx) (*Table, error) {
	rel, err := ctx.St.Relation(b.Rel)
	if err != nil {
		return nil, err
	}
	if rel.Arity() != len(b.Cols) {
		return nil, fmt.Errorf("algebra: %s has arity %d, got %d column names", b.Rel, rel.Arity(), len(b.Cols))
	}
	if err := distinctCols(b.Cols); err != nil {
		return nil, err
	}
	snap := ctx.St.Memo("algebra.base:"+b.Rel, rel.Version(), func() any {
		tuples := rel.Tuples()
		s := &baseSnapshot{
			rows:   make(map[string][]domain.Value, len(tuples)),
			sorted: make([][]domain.Value, 0, len(tuples)),
		}
		for _, t := range tuples {
			row := append([]domain.Value(nil), t...)
			s.rows[db.Tuple(row).Key()] = row
			s.sorted = append(s.sorted, row)
		}
		return s
	}).(*baseSnapshot)
	return &Table{
		Cols:   append([]string(nil), b.Cols...),
		rows:   snap.rows,
		sorted: snap.sorted,
		shared: true,
	}, nil
}

// String implements Expr.
func (b *Base) String() string {
	return fmt.Sprintf("%s(%s)", b.Rel, strings.Join(b.Cols, ","))
}

// Lit is a literal table: constant rows given by constant names, resolved
// at evaluation time.
type Lit struct {
	Cols []string
	Rows [][]string
}

// Columns implements Expr.
func (l *Lit) Columns() []string { return l.Cols }

// Eval implements Expr.
func (l *Lit) Eval(ctx *Ctx) (*Table, error) {
	if err := distinctCols(l.Cols); err != nil {
		return nil, err
	}
	out := NewTable(l.Cols)
	for _, names := range l.Rows {
		if len(names) != len(l.Cols) {
			return nil, fmt.Errorf("algebra: literal row width mismatch")
		}
		row := make([]domain.Value, len(names))
		for i, n := range names {
			v, err := ctx.constValue(n)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if err := out.Add(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String implements Expr.
func (l *Lit) String() string {
	return fmt.Sprintf("lit(%s)x%d", strings.Join(l.Cols, ","), len(l.Rows))
}

// Select filters rows by a condition.
type Select struct {
	In   Expr
	Cond Cond
}

// Columns implements Expr.
func (s *Select) Columns() []string { return s.In.Columns() }

// Eval implements Expr.
func (s *Select) Eval(ctx *Ctx) (*Table, error) {
	in, err := s.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	idx := in.colIndex()
	out := NewTable(in.Cols)
	for _, row := range in.Rows() {
		ok, err := s.Cond.Holds(ctx, idx, row)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := out.Add(row); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// String implements Expr.
func (s *Select) String() string {
	return fmt.Sprintf("select[%s](%s)", s.Cond.String(), s.In.String())
}

// Project keeps the named columns (in the given order), deduplicating rows.
type Project struct {
	In   Expr
	Cols []string
}

// Columns implements Expr.
func (p *Project) Columns() []string { return p.Cols }

// Eval implements Expr.
func (p *Project) Eval(ctx *Ctx) (*Table, error) {
	in, err := p.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	idx := in.colIndex()
	positions := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		pos, ok := idx[c]
		if !ok {
			return nil, fmt.Errorf("algebra: project on missing column %q", c)
		}
		positions[i] = pos
	}
	out := NewTable(p.Cols)
	for _, row := range in.Rows() {
		slim := make([]domain.Value, len(positions))
		for i, pos := range positions {
			slim[i] = row[pos]
		}
		if err := out.Add(slim); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String implements Expr.
func (p *Project) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.Cols, ","), p.In.String())
}

// Rename renames one column.
type Rename struct {
	In       Expr
	From, To string
}

// Columns implements Expr.
func (r *Rename) Columns() []string {
	out := append([]string(nil), r.In.Columns()...)
	for i, c := range out {
		if c == r.From {
			out[i] = r.To
		}
	}
	return out
}

// Eval implements Expr.
func (r *Rename) Eval(ctx *Ctx) (*Table, error) {
	in, err := r.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	cols := append([]string(nil), in.Cols...)
	found := false
	for i, c := range cols {
		if c == r.From {
			cols[i] = r.To
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("algebra: rename of missing column %q", r.From)
	}
	if err := distinctCols(cols); err != nil {
		return nil, err
	}
	out := NewTable(cols)
	for _, row := range in.Rows() {
		if err := out.Add(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String implements Expr.
func (r *Rename) String() string {
	return fmt.Sprintf("rename[%s->%s](%s)", r.From, r.To, r.In.String())
}

// Extend adds a copy of an existing column under a new name.
type Extend struct {
	In      Expr
	NewCol  string
	FromCol string
}

// Columns implements Expr.
func (e *Extend) Columns() []string {
	return append(append([]string(nil), e.In.Columns()...), e.NewCol)
}

// Eval implements Expr.
func (e *Extend) Eval(ctx *Ctx) (*Table, error) {
	in, err := e.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	idx := in.colIndex()
	pos, ok := idx[e.FromCol]
	if !ok {
		return nil, fmt.Errorf("algebra: extend from missing column %q", e.FromCol)
	}
	cols := append(append([]string(nil), in.Cols...), e.NewCol)
	if err := distinctCols(cols); err != nil {
		return nil, err
	}
	out := NewTable(cols)
	for _, row := range in.Rows() {
		if err := out.Add(append(append([]domain.Value(nil), row...), row[pos])); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String implements Expr.
func (e *Extend) String() string {
	return fmt.Sprintf("extend[%s:=%s](%s)", e.NewCol, e.FromCol, e.In.String())
}

// Join is the natural join: rows agreeing on all shared column names.
// Disjoint columns make it a cross product.
type Join struct {
	L, R Expr
}

// Columns implements Expr.
func (j *Join) Columns() []string {
	out := append([]string(nil), j.L.Columns()...)
	seen := map[string]bool{}
	for _, c := range out {
		seen[c] = true
	}
	for _, c := range j.R.Columns() {
		if !seen[c] {
			out = append(out, c)
		}
	}
	return out
}

// Eval implements Expr.
func (j *Join) Eval(ctx *Ctx) (*Table, error) {
	l, err := j.L.Eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(ctx)
	if err != nil {
		return nil, err
	}
	lIdx := l.colIndex()
	rIdx := r.colIndex()
	var shared []string
	var rExtra []string
	for _, c := range r.Cols {
		if _, ok := lIdx[c]; ok {
			shared = append(shared, c)
		} else {
			rExtra = append(rExtra, c)
		}
	}
	// Hash the right side on the shared columns.
	hash := map[string][][]domain.Value{}
	for _, row := range r.Rows() {
		key := joinKey(row, rIdx, shared)
		hash[key] = append(hash[key], row)
	}
	out := NewTable(append(append([]string(nil), l.Cols...), rExtra...))
	for _, lrow := range l.Rows() {
		key := joinKey(lrow, lIdx, shared)
		for _, rrow := range hash[key] {
			row := append([]domain.Value(nil), lrow...)
			for _, c := range rExtra {
				row = append(row, rrow[rIdx[c]])
			}
			if err := out.Add(row); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func joinKey(row []domain.Value, idx map[string]int, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		k := row[idx[c]].Key()
		parts[i] = fmt.Sprintf("%d:%s", len(k), k)
	}
	return strings.Join(parts, ",")
}

// String implements Expr.
func (j *Join) String() string {
	return fmt.Sprintf("(%s join %s)", j.L.String(), j.R.String())
}

// Union is set union; both inputs must have the same column set, and the
// right side is reordered to match.
type Union struct {
	L, R Expr
}

// Columns implements Expr.
func (u *Union) Columns() []string { return u.L.Columns() }

// Eval implements Expr.
func (u *Union) Eval(ctx *Ctx) (*Table, error) {
	l, r, err := alignedPair(ctx, u.L, u.R)
	if err != nil {
		return nil, err
	}
	out := NewTable(l.Cols)
	for _, row := range l.Rows() {
		if err := out.Add(row); err != nil {
			return nil, err
		}
	}
	for _, row := range r.Rows() {
		if err := out.Add(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String implements Expr.
func (u *Union) String() string {
	return fmt.Sprintf("(%s union %s)", u.L.String(), u.R.String())
}

// Diff is set difference (left minus right), columns aligned like Union.
type Diff struct {
	L, R Expr
}

// Columns implements Expr.
func (d *Diff) Columns() []string { return d.L.Columns() }

// Eval implements Expr.
func (d *Diff) Eval(ctx *Ctx) (*Table, error) {
	l, r, err := alignedPair(ctx, d.L, d.R)
	if err != nil {
		return nil, err
	}
	out := NewTable(l.Cols)
	for _, row := range l.Rows() {
		if !r.Has(row) {
			if err := out.Add(row); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// String implements Expr.
func (d *Diff) String() string {
	return fmt.Sprintf("(%s minus %s)", d.L.String(), d.R.String())
}

// alignedPair evaluates two expressions and reorders the right columns to
// the left's order, failing if the column sets differ.
func alignedPair(ctx *Ctx, le, re Expr) (*Table, *Table, error) {
	l, err := le.Eval(ctx)
	if err != nil {
		return nil, nil, err
	}
	r, err := re.Eval(ctx)
	if err != nil {
		return nil, nil, err
	}
	if len(l.Cols) != len(r.Cols) {
		return nil, nil, fmt.Errorf("algebra: column sets differ: %v vs %v", l.Cols, r.Cols)
	}
	rIdx := r.colIndex()
	perm := make([]int, len(l.Cols))
	for i, c := range l.Cols {
		pos, ok := rIdx[c]
		if !ok {
			return nil, nil, fmt.Errorf("algebra: column sets differ: %v vs %v", l.Cols, r.Cols)
		}
		perm[i] = pos
	}
	aligned := NewTable(l.Cols)
	for _, row := range r.Rows() {
		moved := make([]domain.Value, len(perm))
		for i, pos := range perm {
			moved[i] = row[pos]
		}
		if err := aligned.Add(moved); err != nil {
			return nil, nil, err
		}
	}
	return l, aligned, nil
}

func distinctCols(cols []string) error {
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			return fmt.Errorf("algebra: duplicate column %q", c)
		}
		seen[c] = true
	}
	return nil
}

// Cond is a selection condition.
type Cond interface {
	Holds(ctx *Ctx, idx map[string]int, row []domain.Value) (bool, error)
	String() string
}

// Arg is a condition argument: a column reference or a constant name.
type Arg struct {
	Col   string
	Const string
	IsCol bool
}

// ColArg references a column.
func ColArg(c string) Arg { return Arg{Col: c, IsCol: true} }

// ConstArg references a constant by name.
func ConstArg(name string) Arg { return Arg{Const: name} }

func (a Arg) value(ctx *Ctx, idx map[string]int, row []domain.Value) (domain.Value, error) {
	if a.IsCol {
		pos, ok := idx[a.Col]
		if !ok {
			return nil, fmt.Errorf("algebra: condition on missing column %q", a.Col)
		}
		return row[pos], nil
	}
	return ctx.constValue(a.Const)
}

// String implements fmt.Stringer.
func (a Arg) String() string {
	if a.IsCol {
		return a.Col
	}
	return fmt.Sprintf("%q", a.Const)
}

// CondEq compares two arguments for equality.
type CondEq struct{ A, B Arg }

// Holds implements Cond.
func (c CondEq) Holds(ctx *Ctx, idx map[string]int, row []domain.Value) (bool, error) {
	av, err := c.A.value(ctx, idx, row)
	if err != nil {
		return false, err
	}
	bv, err := c.B.value(ctx, idx, row)
	if err != nil {
		return false, err
	}
	return av.Key() == bv.Key(), nil
}

// String implements Cond.
func (c CondEq) String() string { return c.A.String() + "=" + c.B.String() }

// CondPred evaluates a domain predicate on arguments.
type CondPred struct {
	Pred string
	Args []Arg
}

// Holds implements Cond.
func (c CondPred) Holds(ctx *Ctx, idx map[string]int, row []domain.Value) (bool, error) {
	vals := make([]domain.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.value(ctx, idx, row)
		if err != nil {
			return false, err
		}
		vals[i] = v
	}
	return ctx.Dom.Pred(c.Pred, vals)
}

// String implements Cond.
func (c CondPred) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Pred + "(" + strings.Join(parts, ",") + ")"
}

// CondNot negates a condition.
type CondNot struct{ C Cond }

// Holds implements Cond.
func (c CondNot) Holds(ctx *Ctx, idx map[string]int, row []domain.Value) (bool, error) {
	v, err := c.C.Holds(ctx, idx, row)
	return !v, err
}

// String implements Cond.
func (c CondNot) String() string { return "~" + c.C.String() }

// CondAnd conjoins conditions.
type CondAnd struct{ Cs []Cond }

// Holds implements Cond.
func (c CondAnd) Holds(ctx *Ctx, idx map[string]int, row []domain.Value) (bool, error) {
	for _, s := range c.Cs {
		v, err := s.Holds(ctx, idx, row)
		if err != nil || !v {
			return false, err
		}
	}
	return true, nil
}

// String implements Cond.
func (c CondAnd) String() string {
	parts := make([]string, len(c.Cs))
	for i, s := range c.Cs {
		parts[i] = s.String()
	}
	return strings.Join(parts, "&")
}
