package server

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	finq "repro"
	"repro/apiv1"
	"repro/internal/obs"
	"repro/internal/obs/prof"
)

// This file wires the prof package into the service: the SLO engine reads
// the RED counters, a trip cross-links the tripping request's exemplar and
// tail capture into a triggered profile capture, and three endpoints
// expose the results (GET /v1/slo, GET /debug/profiles, POST
// /debug/profiles/capture). GET /v1/version rides along: the same
// incident bundle — profile, trace, stats — is only comparable across
// builds when every snapshot names the build it came from.

// sloEndpoints are the pooled evaluation endpoints the default objectives
// cover; health probes and metric scrapes don't get SLOs.
var sloEndpoints = []string{"eval", "batch", "decide", "qe", "safety"}

// buildObjectives turns the config's scalar SLO knobs into one objective
// per pooled endpoint. Explicit cfg.SLOObjectives win; otherwise a zero
// SLOLatency disables the engine entirely.
func buildObjectives(cfg Config) []prof.Objective {
	if len(cfg.SLOObjectives) > 0 {
		return cfg.SLOObjectives
	}
	if cfg.SLOLatency <= 0 {
		return nil
	}
	objs := make([]prof.Objective, 0, len(sloEndpoints))
	for _, ep := range sloEndpoints {
		objs = append(objs, prof.Objective{
			Endpoint:      ep,
			LatencyUS:     cfg.SLOLatency.Microseconds(),
			LatencyTarget: cfg.SLOLatencyTarget,
			ErrorTarget:   cfg.SLOErrorTarget,
		})
	}
	return objs
}

// sloSource adapts the RED metric families into the engine's counts. Each
// objective's latency threshold is resolved once (bucket-rounded), so a
// tick is a handful of atomic loads per endpoint.
func sloSource(objectives []prof.Objective) prof.Source {
	thresholds := make(map[string]int64, len(objectives))
	for _, o := range objectives {
		thresholds[o.Endpoint] = o.EffectiveLatencyUS()
	}
	return func() map[string]prof.EndpointCounts {
		out := make(map[string]prof.EndpointCounts, len(thresholds))
		for ep, thresh := range thresholds {
			family := red[ep]
			if family == nil {
				continue
			}
			c := prof.EndpointCounts{
				Requests: family.requests.Value(),
				Errors:   family.errors.Value(),
				LatCount: family.latency.Count(),
			}
			if thresh > 0 {
				c.LatGood = family.latency.CountUnder(thresh)
			}
			out[ep] = c
		}
		return out
	}
}

// onSLOTrip is the engine's trip callback: it finds the request that
// evidenced the burn (the slowest latency bucket's exemplar for latency
// trips, the newest errored tail capture for error trips), cross-links
// its tail-sampler capture, and hands the capture store an async trigger.
// It runs on the engine's tick goroutine, so everything here is bounded:
// map lookups and an atomic gate — the profile itself records on the
// store's goroutine.
func (s *Server) onSLOTrip(tr prof.Trip) {
	meta := prof.Capture{
		Reason:   "slo:" + tr.Endpoint + ":" + tr.Dimension,
		Endpoint: tr.Endpoint,
	}
	meta.RequestID = s.tripEvidence(tr)
	caps := s.TailCaptures()
	if meta.RequestID != "" {
		for _, tc := range caps {
			if tc.RequestID == meta.RequestID {
				meta.TailID = tc.RequestID
				meta.QueryKey = tc.QueryKey
				break
			}
		}
	}
	if meta.TailID == "" {
		// The exemplar may predate this server's tail ring (the RED
		// histograms are process-cumulative, the ring is per server and
		// bounded). Fall back to the newest retained capture that matches
		// the tripped dimension so the profile still links to a live trace.
		want := ReasonSlow
		if tr.Dimension == prof.DimErrors {
			want = ReasonError
		}
		for i := len(caps) - 1; i >= 0; i-- {
			if caps[i].Endpoint == tr.Endpoint && caps[i].Reason == want {
				meta.TailID = caps[i].RequestID
				meta.QueryKey = caps[i].QueryKey
				if meta.RequestID == "" {
					meta.RequestID = caps[i].RequestID
				}
				break
			}
		}
	}
	started, why := s.profStore.Trigger(meta)
	s.logger().LogAttrs(context.Background(), slog.LevelWarn, "slo trip",
		slog.String("endpoint", tr.Endpoint),
		slog.String("dimension", tr.Dimension),
		slog.Float64("burn_fast", tr.FastBurn),
		slog.Float64("burn_slow", tr.SlowBurn),
		slog.String("request_id", meta.RequestID),
		slog.Bool("capture_started", started),
		slog.String("capture_skipped", why),
	)
}

// tripEvidence picks a request ID that evidences the trip: for latency,
// the exemplar of the highest occupied latency bucket above the
// objective's threshold (the slowest recent request); for errors, the
// newest errored or slow tail capture on the endpoint.
func (s *Server) tripEvidence(tr prof.Trip) string {
	family := red[tr.Endpoint]
	if family == nil {
		return ""
	}
	if tr.Dimension == prof.DimLatency {
		thresh := int64(0)
		for _, o := range s.objectives {
			if o.Endpoint == tr.Endpoint {
				thresh = o.EffectiveLatencyUS()
			}
		}
		lo := obs.BucketIndex(thresh) + 1
		for i := obs.NumBuckets - 1; i >= lo; i-- {
			if ex := family.latency.ExemplarFor(i); ex != nil {
				return ex.RequestID
			}
		}
		return ""
	}
	caps := s.TailCaptures()
	for i := len(caps) - 1; i >= 0; i-- {
		if caps[i].Endpoint == tr.Endpoint && caps[i].Reason == ReasonError {
			return caps[i].RequestID
		}
	}
	return ""
}

// SLOResponse is the body of GET /v1/slo.
type SLOResponse struct {
	Enabled      bool                  `json:"enabled"`
	TickMS       int64                 `json:"tick_ms,omitempty"`
	FastWindowMS int64                 `json:"fast_window_ms,omitempty"`
	SlowWindowMS int64                 `json:"slow_window_ms,omitempty"`
	TripBurn     float64               `json:"trip_burn,omitempty"`
	Endpoints    []prof.EndpointStatus `json:"endpoints,omitempty"`
}

// handleSLO serves GET /v1/slo: the engine's window configuration and
// every objective's current burn state. With no SLO configured it answers
// {"enabled": false} rather than 404, so probes need no config knowledge.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.sloEngine == nil {
		writeJSON(w, http.StatusOK, SLOResponse{})
		return
	}
	tick, fast, slow, burn := s.sloEngine.Windows()
	writeJSON(w, http.StatusOK, SLOResponse{
		Enabled:      true,
		TickMS:       tick.Milliseconds(),
		FastWindowMS: fast.Milliseconds(),
		SlowWindowMS: slow.Milliseconds(),
		TripBurn:     burn,
		Endpoints:    s.sloEngine.Status(),
	})
}

// ProfilesResponse is the body of GET /debug/profiles without an id.
type ProfilesResponse struct {
	Armed    bool           `json:"armed"`
	Captures []prof.Capture `json:"captures"`
}

// handleProfiles serves GET /debug/profiles: no arguments lists the
// retained captures and the trigger gate; ?id= fetches one capture's
// metadata; ?id=&kind=cpu|heap downloads the raw pprof payload (feed it
// to `go tool pprof`).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		caps := s.profStore.List()
		if caps == nil {
			caps = []prof.Capture{}
		}
		writeJSON(w, http.StatusOK, ProfilesResponse{Armed: s.profStore.Armed(), Captures: caps})
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		c, ok := s.profStore.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no profile capture %q", id)
			return
		}
		writeJSON(w, http.StatusOK, c)
		return
	}
	if kind != prof.KindCPU && kind != prof.KindHeap {
		writeError(w, http.StatusBadRequest, "unknown kind %q (want %q or %q)", kind, prof.KindCPU, prof.KindHeap)
		return
	}
	payload, ok := s.profStore.Payload(id, kind)
	if !ok {
		writeError(w, http.StatusNotFound, "no profile capture %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+id+`-`+kind+`.pb.gz"`)
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// maxManualCaptureMS bounds an on-demand capture window: CPU profiling is
// process-global, so a request cannot hold it for minutes.
const maxManualCaptureMS = 10_000

// captureRequest is the optional body of POST /debug/profiles/capture.
type captureRequest struct {
	DurationMS int64 `json:"duration_ms,omitempty"`
}

// handleProfileCapture serves POST /debug/profiles/capture: a synchronous
// CPU+heap capture (the configured window, or ?dur_ms= / a JSON
// {"duration_ms": N} body, capped at 10s), answering with the completed
// capture's metadata. 409 when a capture is already in flight.
func (s *Server) handleProfileCapture(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var durMS int64
	if q := r.URL.Query().Get("dur_ms"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad dur_ms %q", q)
			return
		}
		durMS = n
	}
	if durMS == 0 && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<12))
		if err == nil && len(body) > 0 {
			var req captureRequest
			if jsonErr := json.Unmarshal(body, &req); jsonErr != nil {
				writeError(w, http.StatusBadRequest, "bad request body: %v", jsonErr)
				return
			}
			if req.DurationMS < 0 {
				writeError(w, http.StatusBadRequest, "negative duration_ms")
				return
			}
			durMS = req.DurationMS
		}
	}
	if durMS > maxManualCaptureMS {
		writeError(w, http.StatusBadRequest, "duration %dms exceeds the %dms cap", durMS, maxManualCaptureMS)
		return
	}
	meta := prof.Capture{Reason: "manual"}
	if rw, ok := w.(*respWriter); ok {
		meta.RequestID = rw.reqID
	}
	c, err := s.profStore.CaptureNow(meta, time.Duration(durMS)*time.Millisecond)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, *c)
}

// handleVersion serves GET /v1/version: the build identity the binary
// already embeds (finq.Build), in the apiv1.VersionResponse wire form, so
// profiles, traces, and stats snapshots can be pinned to the exact build
// that produced them.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	b := finq.Build()
	writeJSON(w, http.StatusOK, apiv1.VersionResponse{
		Version:     b.Version,
		GoVersion:   b.GoVersion,
		VCSRevision: b.VCSRevision,
		VCSTime:     b.VCSTime,
		Modified:    b.Modified,
		Line:        finq.Version(),
	})
}
