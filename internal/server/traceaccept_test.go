package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/apiv1"
	"repro/client"
	"repro/internal/obs/trace"
	"repro/internal/obs/trace/tracetest"
	"repro/internal/obs/tracectx"
)

// TestCrossProcessTraceStitch is the distributed-tracing acceptance test:
// two finqd instances with separate flight recorders, one logical request
// that hops across both (the client calls A, then calls B parented on A's
// echoed trace position — the forwarding shape), and the proof that a
// single trace ID spans both rings with correct parentage. The two rings
// then round-trip through the JSONL dump format and stitch into one
// structurally valid Chrome trace with a cross-process flow edge.
func TestCrossProcessTraceStitch(t *testing.T) {
	recA, recB := trace.NewRecorder(), trace.NewRecorder()
	recA.Arm(1 << 14)
	defer recA.Disarm()
	recB.Arm(1 << 14)
	defer recB.Disarm()
	_, baseA := startServer(t, Config{ServiceName: "finqd-a", TraceRecorder: recA})
	_, baseB := startServer(t, Config{ServiceName: "finqd-b", TraceRecorder: recB})

	echo := func(c *client.Client) *string {
		s := new(string)
		c.OnResponse = func(status int, h http.Header) {
			if tp := h.Get("traceparent"); tp != "" {
				*s = tp
			}
		}
		return s
	}
	body := apiv1.EvalRequest{
		Domain:  "eq",
		State:   json.RawMessage(eqStateJSON),
		Formula: "exists y. F(x, y)",
	}

	// Hop 1: the client mints the root and calls A.
	root := tracectx.NewRoot()
	cA := client.New(baseA, nil)
	echoA := echo(cA)
	if _, err := cA.Eval(tracectx.With(context.Background(), root), body); err != nil {
		t.Fatal(err)
	}
	tcA, ok := tracectx.Parse(*echoA, "")
	if !ok {
		t.Fatalf("A's response traceparent %q does not parse", *echoA)
	}
	if tcA.TraceID != root.TraceID {
		t.Fatalf("A switched traces: %s, want %s", tcA.TraceID, root.TraceID)
	}
	if tcA.SpanID == root.SpanID {
		t.Fatal("A echoed the caller's span position instead of its own request span")
	}

	// Hop 2: the request is forwarded — B is called parented on exactly
	// the position A echoed.
	cB := client.New(baseB, nil)
	echoB := echo(cB)
	if _, err := cB.Eval(tracectx.With(context.Background(), tcA), body); err != nil {
		t.Fatal(err)
	}
	tcB, ok := tracectx.Parse(*echoB, "")
	if !ok {
		t.Fatalf("B's response traceparent %q does not parse", *echoB)
	}
	if tcB.TraceID != root.TraceID {
		t.Fatalf("B switched traces: %s, want %s", tcB.TraceID, root.TraceID)
	}
	if tcB.SpanID == tcA.SpanID {
		t.Fatal("B echoed A's span position instead of minting its own")
	}

	recA.Disarm()
	recB.Disarm()
	evA, evB := recA.Dump(), recB.Dump()
	wantTrace := root.TraceID.String()

	// A's ring actually holds the span whose position A echoed, and B's
	// server.request is recorded as its child: the cross-process edge.
	foundEcho := false
	for _, e := range evA {
		if e.Span == tcA.SpanID.String() && e.Trace == wantTrace {
			foundEcho = true
			break
		}
	}
	if !foundEcho {
		t.Fatalf("A's ring holds no span at the echoed position %s", tcA.SpanID)
	}
	foundChild := false
	for _, e := range evB {
		if e.Name == "server.request" && e.Phase == trace.PhaseBegin &&
			e.Trace == wantTrace && e.Parent == tcA.SpanID.String() {
			foundChild = true
			break
		}
	}
	if !foundChild {
		t.Fatalf("B's ring holds no server.request parented on A's span %s", tcA.SpanID)
	}

	// Round-trip both rings through the JSONL dump format — the same bytes
	// finqload -trace-dir and /debug/trace/export?format=jsonl produce.
	var dumps []trace.ProcessDump
	for _, p := range []struct {
		name string
		rec  *trace.Recorder
		ev   []trace.Event
	}{{"finqd-a", recA, evA}, {"finqd-b", recB, evB}} {
		var buf bytes.Buffer
		meta := trace.Meta{Process: p.name, EpochUnixNano: p.rec.Epoch().UnixNano()}
		if err := trace.WriteJSONLMeta(&buf, meta, p.ev); err != nil {
			t.Fatal(err)
		}
		gotMeta, gotEvents, err := trace.ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotMeta.Process != p.name || gotMeta.EpochUnixNano != meta.EpochUnixNano {
			t.Fatalf("meta did not survive the dump: %+v vs %+v", gotMeta, meta)
		}
		if len(gotEvents) != len(p.ev) {
			t.Fatalf("%s: %d events survived the dump, want %d", p.name, len(gotEvents), len(p.ev))
		}
		dumps = append(dumps, trace.ProcessDump{Name: p.name, Meta: gotMeta, Events: gotEvents})
	}

	var stitched bytes.Buffer
	stats, err := trace.Stitch(&stitched, dumps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processes != 2 {
		t.Fatalf("stitched %d processes, want 2", stats.Processes)
	}
	if stats.CrossEdges < 1 {
		t.Fatalf("stitch drew no cross-process edges; the forwarded hop should link A to B (stats %+v)", stats)
	}
	if n := tracetest.ValidateChrome(t, stitched.Bytes()); n == 0 {
		t.Fatal("stitched trace holds no events")
	}

	// The stitched output names both process lanes and carries the single
	// shared trace ID on events from both pids.
	var arr []struct {
		Phase string         `json:"ph"`
		PID   int64          `json:"pid"`
		Args  map[string]any `json:"args"`
	}
	if err := json.Unmarshal(stitched.Bytes(), &arr); err != nil {
		t.Fatal(err)
	}
	pids := map[int64]bool{}
	for _, e := range arr {
		if e.Phase == "M" {
			continue
		}
		if tid, _ := e.Args["trace_id"].(string); tid == wantTrace {
			pids[e.PID] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("trace %s spans %d stitched process lanes, want 2", wantTrace, len(pids))
	}
}
