// Logging-overhead benchmark: the E1 workload through the full server
// handler chain with the structured access log on and off. `make
// bench-log` runs TestWriteBenchLog, which measures both and writes
// BENCH_log.json; the acceptance bar is under 3% — the log path is one
// line per request (attr build + JSON encode), amortized over an entire
// evaluation.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/obs/logctx"
)

// e1Body is the E1 workload (the §1.1 enumeration of ∃y (R(y) ∧ x < y)
// over Presburger ℕ, as in `make trace-demo`), sized to a complete 34-row
// answer so one benchmark op is one real millisecond-scale enumeration —
// the scale at which E1 actually runs, and against which the per-request
// access-log cost is judged.
const e1Body = `{
  "domain": "presburger",
  "state": {"relations": {"R": [["3"], ["5"], ["8"], ["13"], ["21"], ["34"]]}},
  "formula": "exists y. (R(y) & lt(x, y))",
  "mode": "enumerate",
  "budget": {"rows": 64, "probe": 4096}
}`

// noopHandler is the logging-off mode: Enabled says no before any attr is
// built, so the handler chain cost is the bare middleware.
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h noopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h noopHandler) WithGroup(string) slog.Handler           { return h }

func runLogBench(b *testing.B, logger *slog.Logger) {
	srv := New(Config{Logger: logger})
	h := srv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := http.NewRequest(http.MethodPost, "/v1/eval", strings.NewReader(e1Body))
		if err != nil {
			b.Fatal(err)
		}
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			b.Fatalf("eval: %d %s", rec.status, rec.body.Bytes())
		}
	}
}

func BenchmarkServeE1LogOn(b *testing.B) {
	logger, err := logctx.NewLogger(io.Discard, slog.LevelDebug, "json")
	if err != nil {
		b.Fatal(err)
	}
	runLogBench(b, logger)
}

func BenchmarkServeE1LogOff(b *testing.B) {
	runLogBench(b, slog.New(noopHandler{}))
}

// TestWriteBenchLog measures both modes and writes BENCH_log.json. Gated
// behind BENCH_LOG=1 (the `make bench-log` target) so plain `go test`
// stays fast and does not rewrite the checked-in measurement.
func TestWriteBenchLog(t *testing.T) {
	if os.Getenv("BENCH_LOG") == "" {
		t.Skip("set BENCH_LOG=1 (or run `make bench-log`) to write BENCH_log.json")
	}
	onLogger, err := logctx.NewLogger(io.Discard, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	offLogger := slog.New(noopHandler{})
	// Interleave modes and keep each mode's fastest round, as in
	// TestWriteBenchObs: the minimum is the least-noise cost estimate.
	const rounds = 5
	onNs, offNs := int64(0), int64(0)
	for r := 0; r < rounds; r++ {
		on := testing.Benchmark(func(b *testing.B) { runLogBench(b, onLogger) })
		off := testing.Benchmark(func(b *testing.B) { runLogBench(b, offLogger) })
		if onNs == 0 || on.NsPerOp() < onNs {
			onNs = on.NsPerOp()
		}
		if offNs == 0 || off.NsPerOp() < offNs {
			offNs = off.NsPerOp()
		}
	}
	overhead := 0.0
	if offNs > 0 {
		overhead = (float64(onNs) - float64(offNs)) / float64(offNs) * 100
	}
	out := map[string]any{
		"benchmark":             "POST /v1/eval, E1 enumeration (34 rows, Presburger), full handler chain (no network)",
		"ns_per_op_logging_on":  onNs,
		"ns_per_op_logging_off": offNs,
		"rounds":                rounds,
		"overhead_pct":          overhead,
		"note":                  "min ns/op over interleaved rounds; on = JSON access log to a discarded writer, off = a handler whose Enabled is false; the delta is one attr-build + JSON-encode per request",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// The test runs with internal/server as its working directory; the
	// measurement artifact belongs next to BENCH_obs.json at the repo root.
	if err := os.WriteFile("../../BENCH_log.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_log.json: logging on %d ns/op, off %d ns/op, overhead %.2f%%\n",
		onNs, offNs, overhead)
	if overhead >= 3.0 {
		t.Errorf("access-log overhead %.2f%% exceeds the 3%% budget", overhead)
	}
}
