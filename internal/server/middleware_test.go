package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/apiv1"
	"repro/internal/obs/logctx"
	"repro/internal/obs/trace"
)

// logCapture is a goroutine-safe sink for the access log under test.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *logCapture) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

// lines parses the captured JSON log into one map per line, failing the
// test on any corrupt line — log integrity is part of what's under test.
func (c *logCapture) lines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, l := range strings.Split(strings.TrimSpace(c.String()), "\n") {
		if l == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("corrupt log line %q: %v", l, err)
		}
		out = append(out, rec)
	}
	return out
}

// captureLogger builds a JSON logger into a fresh capture.
func captureLogger(t *testing.T) (*logCapture, *slog.Logger) {
	t.Helper()
	cap := &logCapture{}
	logger, err := logctx.NewLogger(cap, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	return cap, logger
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestIDEchoed covers the echo contract: honored when valid,
// minted when absent or malformed, present on error responses, and quoted
// in JSON error bodies.
func TestRequestIDEchoed(t *testing.T) {
	_, base := startServer(t, Config{})

	// Honored client ID, success path.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/decide",
		strings.NewReader(`{"domain": "eq", "sentence": "forall x. x = x"}`))
	req.Header.Set("X-Request-Id", "client-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-1" {
		t.Fatalf("valid client ID not echoed: got %q", got)
	}

	// Malformed client ID is replaced, not echoed.
	req, _ = http.NewRequest(http.MethodPost, base+"/v1/decide",
		strings.NewReader(`{"domain": "eq", "sentence": "forall x. x = x"}`))
	req.Header.Set("X-Request-Id", "has spaces & punctuation!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if got == "" || strings.Contains(got, " ") {
		t.Fatalf("malformed client ID should be replaced with a minted one, got %q", got)
	}

	// Error responses carry the ID in the header and the JSON body.
	req, _ = http.NewRequest(http.MethodPost, base+"/v1/decide",
		strings.NewReader(`{"domain": "nope", "sentence": "x = x"}`))
	req.Header.Set("X-Request-Id", "err-id-2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") != "err-id-2" {
		t.Fatalf("400 response misses the ID header: %v", resp.Header)
	}
	var body apiv1.ErrorEnvelope
	if err := json.Unmarshal(data, &body); err != nil || body.Error.RequestID != "err-id-2" {
		t.Fatalf("400 body should quote the request ID: %s (%v)", data, err)
	}
}

// TestRequestIDOnPanic500: a handler panic still produces a response with
// the ID echoed, the ID in the body, and panic=true in the access log.
func TestRequestIDOnPanic500(t *testing.T) {
	cap, logger := captureLogger(t)
	srv := New(Config{Logger: logger})
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := srv.instrument(srv.recovered(mux))

	req, _ := http.NewRequest(http.MethodGet, "/boom", nil)
	req.Header.Set("X-Request-Id", "panic-id-3")
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusInternalServerError {
		t.Fatalf("want 500, got %d", rec.status)
	}
	if rec.Header().Get("X-Request-Id") != "panic-id-3" {
		t.Fatal("panic 500 misses the ID header")
	}
	var body apiv1.ErrorEnvelope
	if err := json.Unmarshal(rec.body.Bytes(), &body); err != nil || body.Error.RequestID != "panic-id-3" {
		t.Fatalf("panic 500 body should quote the request ID: %s", rec.body.Bytes())
	}
	if body.Error.Code != apiv1.CodeInternal {
		t.Fatalf("panic 500 code %q, want %q", body.Error.Code, apiv1.CodeInternal)
	}
	found := false
	for _, rec := range cap.lines(t) {
		if rec["id"] == "panic-id-3" && rec["panic"] == true && rec["status"] == float64(500) {
			found = true
		}
	}
	if !found {
		t.Fatalf("access log misses the panic line: %s", cap.String())
	}
}

// recorder is a minimal ResponseWriter for driving the handler directly.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}
func (r *recorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// TestRequestIDOn429Shed saturates the pool and checks the shed response
// carries the ID (header and body) and the access log marks shed=true.
func TestRequestIDOn429Shed(t *testing.T) {
	cap, logger := captureLogger(t)
	cfg := Config{Workers: 1, QueueDepth: 1, EvalTimeout: 30 * time.Second, Logger: logger}
	srv, base := startServer(t, cfg)

	// Saturate workers + queue with requests the clients cancel at the end,
	// as in TestQueueOverflow429.
	satCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	for i := 0; i < cfg.Workers+cfg.QueueDepth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(satCtx, http.MethodPost,
				base+"/v1/eval", strings.NewReader(slowEvalBody))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, "pool saturation", func() bool {
		return srv.queued.Load() >= int64(cfg.Workers+cfg.QueueDepth)
	})

	req, _ := http.NewRequest(http.MethodPost, base+"/v1/eval", strings.NewReader(slowEvalBody))
	req.Header.Set("X-Request-Id", "shed-id-4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Request-Id") != "shed-id-4" {
		t.Fatal("429 misses the ID header")
	}
	var body apiv1.ErrorEnvelope
	if err := json.Unmarshal(data, &body); err != nil || body.Error.RequestID != "shed-id-4" {
		t.Fatalf("429 body should quote the request ID: %s", data)
	}
	if body.Error.Code != apiv1.CodeOverCapacity {
		t.Fatalf("429 code %q, want %q", body.Error.Code, apiv1.CodeOverCapacity)
	}
	waitFor(t, "shed access-log line", func() bool {
		for _, rec := range cap.lines(t) {
			if rec["id"] == "shed-id-4" && rec["shed"] == true {
				return true
			}
		}
		return false
	})
}

// TestConcurrentRequestIDsUnique fires many parallel requests without
// client IDs and checks every response got a distinct minted ID and every
// one appears in an intact access-log line (run under -race in CI).
func TestConcurrentRequestIDsUnique(t *testing.T) {
	cap, logger := captureLogger(t)
	_, base := startServer(t, Config{Logger: logger})

	const n = 32
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.DefaultClient.Post(base+"/v1/decide", "application/json",
				strings.NewReader(`{"domain": "eq", "sentence": "forall x. x = x"}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ids <- resp.Header.Get("X-Request-Id")
		}()
	}
	wg.Wait()
	close(ids)

	seen := map[string]bool{}
	for id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("missing or duplicate minted ID %q", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct IDs, want %d", len(seen), n)
	}
	// Every ID must land in a parseable access-log line with its fields.
	waitFor(t, "all access-log lines", func() bool {
		logged := map[string]bool{}
		for _, rec := range cap.lines(t) {
			if rec["msg"] == "request" {
				if id, ok := rec["id"].(string); ok {
					logged[id] = true
				}
			}
		}
		for id := range seen {
			if !logged[id] {
				return false
			}
		}
		return true
	})
	for _, rec := range cap.lines(t) {
		if rec["msg"] != "request" {
			continue
		}
		for _, field := range []string{"id", "endpoint", "status", "dur_us", "request_id"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("access-log line misses %q: %v", field, rec)
			}
		}
		if rec["id"] != rec["request_id"] {
			t.Fatalf("explicit id and context-injected request_id disagree: %v", rec)
		}
	}
}

// TestReadyzDrain: /readyz flips to 503 as soon as a drain begins, while
// an in-flight evaluation still completes and /healthz stays 200.
func TestReadyzDrain(t *testing.T) {
	cfg := Config{EvalTimeout: 400 * time.Millisecond}
	srv, base := startServer(t, cfg)

	get := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/readyz") != http.StatusOK {
		t.Fatal("fresh server not ready")
	}

	// In-flight slow evaluation…
	done := make(chan struct{})
	var code int
	var body []byte
	go func() {
		defer close(done)
		code, body = post(t, http.DefaultClient, base+"/v1/eval", slowEvalBody)
	}()
	time.Sleep(50 * time.Millisecond)

	// …drain begins: readiness flips, liveness holds, listener still serves.
	srv.StartDrain()
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("/readyz should be 503 mid-drain")
	}
	if get("/healthz") != http.StatusOK {
		t.Fatal("/healthz should stay 200 mid-drain")
	}
	<-done
	if code != http.StatusOK || !strings.Contains(string(body), `"stopped":"deadline"`) {
		t.Fatalf("in-flight eval during drain: %d %s", code, body)
	}
}

// TestPrometheusExposition drives traffic, then validates /metrics as a
// text exposition: every family has HELP and TYPE, histogram buckets are
// cumulative and monotone, and the +Inf bucket equals _count.
func TestPrometheusExposition(t *testing.T) {
	_, base := startServer(t, Config{})
	post(t, http.DefaultClient, base+"/v1/decide", `{"domain": "eq", "sentence": "forall x. x = x"}`)
	post(t, http.DefaultClient, base+"/v1/eval", `{
	  "domain": "eq",
	  "state": {"relations": {"F": [["adam", "abel"]]}},
	  "formula": "exists y. F(x, y)"}`)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	validateExposition(t, string(text))

	// The per-endpoint RED families and runtime gauges must be present.
	for _, want := range []string{
		"server_eval_requests", "server_eval_errors", "server_eval_latency_us_count",
		"server_decide_requests", "runtime_goroutines", "runtime_heap_alloc_bytes",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics misses %s", want)
		}
	}
}

// validateExposition is a strict-enough parser for the text format the
// server emits: HELP/TYPE coverage and histogram-series consistency.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	helps := map[string]bool{}
	types := map[string]string{}
	type histState struct {
		lastBucket int64
		infBucket  int64
		count      int64
		hasInf     bool
		hasCount   bool
	}
	hists := map[string]*histState{}

	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 2 || fields[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			helps[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value, optionally with an OpenMetrics
		// exemplar suffix (` # {labels} value`) that 0.0.4 parsing ignores.
		if j := strings.Index(line, " # "); j >= 0 {
			line = line[:j]
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		nameAndLabels, valStr := line[:i], line[i+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := nameAndLabels
		labels := ""
		if j := strings.IndexByte(nameAndLabels, '{'); j >= 0 {
			name, labels = nameAndLabels[:j], nameAndLabels[j:]
		}

		family := name
		switch {
		case strings.HasSuffix(name, "_bucket"):
			family = strings.TrimSuffix(name, "_bucket")
		case strings.HasSuffix(name, "_sum"):
			if types[strings.TrimSuffix(name, "_sum")] == "histogram" {
				family = strings.TrimSuffix(name, "_sum")
			}
		case strings.HasSuffix(name, "_count"):
			if types[strings.TrimSuffix(name, "_count")] == "histogram" {
				family = strings.TrimSuffix(name, "_count")
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q has no TYPE for family %q", line, family)
		}
		if !helps[family] && !helps[name] {
			t.Fatalf("sample %q has no HELP for family %q", line, family)
		}

		if types[family] == "histogram" {
			h := hists[family]
			if h == nil {
				h = &histState{}
				hists[family] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				v := int64(val)
				if strings.Contains(labels, `le="+Inf"`) {
					h.infBucket, h.hasInf = v, true
				} else {
					if v < h.lastBucket {
						t.Fatalf("histogram %s buckets not cumulative: %d after %d (%q)",
							family, v, h.lastBucket, line)
					}
					h.lastBucket = v
				}
			case strings.HasSuffix(name, "_count"):
				h.count, h.hasCount = int64(val), true
			}
		}
	}
	if len(types) == 0 {
		t.Fatal("exposition contains no TYPE lines")
	}
	for family, h := range hists {
		if !h.hasInf || !h.hasCount {
			t.Fatalf("histogram %s misses +Inf bucket or _count", family)
		}
		if h.infBucket != h.count {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", family, h.infBucket, h.count)
		}
		if h.lastBucket > h.infBucket {
			t.Fatalf("histogram %s: finite bucket %d exceeds +Inf %d", family, h.lastBucket, h.infBucket)
		}
	}
}

// TestSlowRequestTraceableBySingleID is the acceptance check: one slow
// request, one ID, found in all four places — the access log line, the
// obs span args (carried on the trace events), the flight-recorder
// events, and the slow-query capture.
func TestSlowRequestTraceableBySingleID(t *testing.T) {
	trace.Arm(0)
	defer trace.Disarm()

	cap, logger := captureLogger(t)
	cfg := Config{
		EvalTimeout: 150 * time.Millisecond,
		SlowRequest: time.Microsecond, // everything is "slow" for the test
		Logger:      logger,
	}
	_, base := startServer(t, cfg)

	const id = "e2e-trace-me"
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/eval", strings.NewReader(slowEvalBody))
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"stopped":"deadline"`) {
		t.Fatalf("slow eval: %d %s", resp.StatusCode, data)
	}

	// 1. The access log line carries the ID (explicit field and the
	// context-injected request_id attribute).
	waitFor(t, "access log line", func() bool {
		for _, rec := range cap.lines(t) {
			if rec["msg"] == "request" && rec["id"] == id && rec["request_id"] == id {
				return true
			}
		}
		return false
	})

	// 2 + 3. The obs spans' trace events carry the ID as their "req" arg:
	// the server endpoint span, the finq.Eval root span, and the
	// evaluation-core span all appear, each with begin and end phases.
	events := trace.Events()
	phases := map[string]map[trace.Phase]bool{}
	for _, e := range events {
		if !hasReqArg(e, id) {
			continue
		}
		if phases[e.Name] == nil {
			phases[e.Name] = map[trace.Phase]bool{}
		}
		phases[e.Name][e.Phase] = true
	}
	for _, span := range []string{"server.eval", "finq.eval", "query.enumerate"} {
		if !phases[span][trace.PhaseBegin] || !phases[span][trace.PhaseEnd] {
			t.Errorf("span %s: begin/end trace events with req=%s not found (have %v)",
				span, id, phases[span])
		}
	}

	// 4. The slow-query capture is retrievable by the same ID and holds
	// the span subtree.
	waitFor(t, "slow capture", func() bool {
		resp, err := http.Get(base + "/debug/slow?id=" + id)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusOK
	})
	resp, err = http.Get(base + "/debug/slow?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	capData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sc TailCapture
	if err := json.Unmarshal(capData, &sc); err != nil {
		t.Fatalf("slow capture is not JSON: %v in %s", err, capData)
	}
	if sc.RequestID != id || sc.Endpoint != "eval" || sc.Stopped != "deadline" {
		t.Fatalf("slow capture fields: %+v", sc)
	}
	if sc.Reason != ReasonSlow {
		t.Fatalf("slow capture reason: want %q, got %q", ReasonSlow, sc.Reason)
	}
	if len(sc.Events) == 0 {
		t.Fatal("slow capture holds no trace events")
	}
	foundEvalEvent := false
	for _, e := range sc.Events {
		if e.Name == "finq.eval" {
			foundEvalEvent = true
		}
	}
	if !foundEvalEvent {
		t.Fatalf("slow capture subtree misses the finq.eval span: %s", capData)
	}

	// 5. /debug/slow without an id lists the capture: one line per held
	// sample, enough to pick an id to drill into.
	resp, err = http.Get(base + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	listData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var listing []TailListing
	if err := json.Unmarshal(listData, &listing); err != nil {
		t.Fatalf("listing is not JSON: %v in %s", err, listData)
	}
	foundListing := false
	for _, l := range listing {
		if l.RequestID == id && l.Endpoint == "eval" && l.Reason == ReasonSlow {
			foundListing = true
		}
	}
	if !foundListing {
		t.Fatalf("listing misses the slow request %q: %s", id, listData)
	}

	// 6. The Prometheus exposition links the metric to the trace: the eval
	// latency bucket the request fell into carries an OpenMetrics exemplar
	// with the same request id, so `/metrics → /debug/slow?id=` is one hop.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expoData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exemplarRE := regexp.MustCompile(
		`(?m)^server_eval_latency_us_bucket\{le="[0-9]+"\} \d+ # \{request_id="` + id + `"\} \d+$`)
	if !exemplarRE.Match(expoData) {
		t.Fatalf("no exemplar with request_id=%q on any server_eval_latency_us bucket:\n%s",
			id, grepLines(expoData, "server_eval_latency_us_bucket"))
	}

	// Unknown IDs 404.
	resp, err = http.Get(base + "/debug/slow?id=no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown slow id: want 404, got %d", resp.StatusCode)
	}
}

// grepLines filters an exposition body down to the lines containing a
// substring, for readable failure messages.
func grepLines(data []byte, substr string) string {
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestTailSamplerReasons drives the two non-slow capture paths: errored
// requests and the first request of a never-before-seen query, with
// SlowRequest set high enough that neither is captured as slow.
func TestTailSamplerReasons(t *testing.T) {
	cfg := Config{
		EvalTimeout: 5 * time.Second,
		SlowRequest: time.Hour, // nothing is slow in this test
	}
	_, base := startServer(t, cfg)

	// A fresh query: captured once with reason first-key, and only once.
	const evalBody = `{
	  "domain": "eq",
	  "state": {"relations": {"G": [["a", "b"]]}},
	  "formula": "exists y. G(x, y)"}`
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/eval", strings.NewReader(evalBody))
		req.Header.Set("X-Request-Id", "tail-first-"+strconv.Itoa(i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval %d: status %d", i, resp.StatusCode)
		}
	}

	// A parse error: captured with reason error.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/eval",
		strings.NewReader(`{"domain": "eq", "formula": "exists y. ("}`))
	req.Header.Set("X-Request-Id", "tail-error-0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad formula: want 400, got %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	listData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var listing []TailListing
	if err := json.Unmarshal(listData, &listing); err != nil {
		t.Fatalf("listing is not JSON: %v in %s", err, listData)
	}
	reasons := map[string]string{}
	for _, l := range listing {
		reasons[l.RequestID] = l.Reason
	}
	if reasons["tail-first-0"] != ReasonFirstKey {
		t.Errorf("first eval of a fresh query: want reason %q, got %q (listing %s)",
			ReasonFirstKey, reasons["tail-first-0"], listData)
	}
	if r, ok := reasons["tail-first-1"]; ok {
		t.Errorf("second eval of the same query captured again (reason %q): %s", r, listData)
	}
	if reasons["tail-error-0"] != ReasonError {
		t.Errorf("errored request: want reason %q, got %q (listing %s)",
			ReasonError, reasons["tail-error-0"], listData)
	}

	// The first-key capture carries the query's canonical key so it can be
	// matched against /v1/stats/queries.
	resp, err = http.Get(base + "/debug/slow?id=tail-first-0")
	if err != nil {
		t.Fatal(err)
	}
	capData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var tc TailCapture
	if err := json.Unmarshal(capData, &tc); err != nil {
		t.Fatalf("capture is not JSON: %v in %s", err, capData)
	}
	if tc.QueryKey == "" {
		t.Fatalf("first-key capture misses the query key: %s", capData)
	}
}
