package server

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/logctx"
	"repro/internal/obs/prof"
	"repro/internal/obs/trace"
	"repro/internal/obs/tracectx"
)

// reqState is the per-request scratchpad the middleware shares with the
// handlers: the request's identity plus the facts the access log reports.
// It lives in the request context; all writers run on the request's own
// goroutine (the recovered middleware included), so plain fields suffice.
type reqState struct {
	id       string
	traceID  string
	endpoint string
	rows     int64
	stopped  string
	queryKey string
	shed     bool
	panicked bool
}

type reqStateKey struct{}

// stateFrom returns the request's reqState, or nil outside a request.
func stateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// noteRows records the answer cardinality for the access log.
func noteRows(ctx context.Context, n int64) {
	if st := stateFrom(ctx); st != nil {
		st.rows = n
	}
}

// noteStopped records the partial-result reason ("budget", "deadline",
// "canceled") for the access log.
func noteStopped(ctx context.Context, reason string) {
	if st := stateFrom(ctx); st != nil && reason != "" {
		st.stopped = reason
	}
}

// noteQueryKey records the evaluated formula's canonical key, feeding the
// tail sampler's first-seen-query sampling and the capture's QueryKey.
func noteQueryKey(ctx context.Context, key string) {
	if st := stateFrom(ctx); st != nil && key != "" {
		st.queryKey = key
	}
}

// respWriter captures the response status for the access log and carries
// the request and trace IDs to writeError (so JSON error bodies can quote
// them without every call site threading the context).
type respWriter struct {
	http.ResponseWriter
	status  int
	reqID   string
	traceID string
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so the
// streaming handler can flush through this wrapper.
func (w *respWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// redSet is one endpoint's RED family: request and error counters plus a
// latency histogram (exposed on /metrics with cumulative buckets and
// _sum/_count via the obs Prometheus writer).
type redSet struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// redEndpoints is the closed set of endpoint labels; unknown paths fold
// into "other" so a path scan cannot mint unbounded metric families.
var redEndpoints = []string{
	"eval", "batch", "decide", "qe", "safety", "domains", "stats", "slo",
	"version", "healthz", "readyz", "metrics", "debug", "other",
}

var red = func() map[string]*redSet {
	m := make(map[string]*redSet, len(redEndpoints))
	for _, e := range redEndpoints {
		m[e] = &redSet{
			requests: obs.NewCounter("server." + e + ".requests"),
			errors:   obs.NewCounter("server." + e + ".errors"),
			latency:  obs.NewHistogram("server." + e + ".latency_us"),
		}
		obs.SetHelp("server."+e+".requests", "Requests served on the "+e+" endpoint.")
		obs.SetHelp("server."+e+".errors", "Requests answered with status >= 400 on the "+e+" endpoint.")
		obs.SetHelp("server."+e+".latency_us", "Request latency on the "+e+" endpoint, microseconds.")
	}
	return m
}()

// endpointName maps a request path onto its RED label.
func endpointName(path string) string {
	switch path {
	case "/v1/eval":
		return "eval"
	case "/v1/eval/batch":
		return "batch"
	case "/v1/decide":
		return "decide"
	case "/v1/qe":
		return "qe"
	case "/v1/safety":
		return "safety"
	case "/v1/domains":
		return "domains"
	case "/v1/stats/queries":
		return "stats"
	case "/v1/slo":
		return "slo"
	case "/v1/version":
		return "version"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/metrics":
		return "metrics"
	}
	if strings.HasPrefix(path, "/debug/") {
		return "debug"
	}
	return "other"
}

// logger returns the server's access-log destination (the process default
// when the config does not inject one).
func (s *Server) logger() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}

// instrument is the outermost middleware: it gives the request its
// identity and emits the request-scoped observability.
//
//   - The request ID is honored from X-Request-Id when well-formed, minted
//     otherwise, echoed on the response (all statuses, 429 sheds and panic
//     500s included), stored in the context (so slog records, obs spans,
//     and trace events carry it), and quoted in JSON error bodies.
//   - The W3C trace position is extracted from `traceparent`/`tracestate`
//     when well-formed, minted as a fresh root otherwise (a malformed
//     header is never an error), and a request span is opened as its
//     child — so every evaluator span below records under one trace ID
//     that survives the process boundary. The request span's position is
//     echoed as the response's `traceparent` (all statuses), and the
//     trace ID is quoted next to the request ID in the access log and
//     JSON error bodies.
//   - Per-endpoint RED metrics: request count, error count (status >= 400),
//     latency histogram.
//   - One structured access-log line per request: id, trace_id, method,
//     endpoint, status, duration, rows, partial-stop reason, shed/panic
//     flags.
//   - Slow, errored, and first-seen-query requests get their span subtree
//     snapshotted from the flight recorder into the tail sampler
//     (tailsample.go).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !logctx.ValidID(id) {
			id = logctx.NewRequestID()
		}
		// Extract-or-mint the trace position. The parsed TC is the
		// *caller's* span (our parent); the request span below descends
		// from it. A fresh root is minted for headerless (or malformed)
		// requests so every request has a trace identity.
		tc, fromPeer := tracectx.Parse(r.Header.Get("traceparent"), r.Header.Get("tracestate"))
		if !fromPeer {
			tc = tracectx.NewRoot()
		}
		st := &reqState{id: id, traceID: tc.TraceID.String(), endpoint: endpointName(r.URL.Path)}
		ctx := logctx.WithRequestID(r.Context(), id)
		ctx = trace.WithRecorder(ctx, s.rec)
		ctx = tracectx.With(ctx, tc)
		ctx = context.WithValue(ctx, reqStateKey{}, st)
		r = r.WithContext(ctx)
		rw := &respWriter{ResponseWriter: w, reqID: id, traceID: st.traceID}
		rw.Header().Set("X-Request-Id", id)

		t0 := time.Now()
		// The handler runs under pprof labels, so every CPU-profile sample
		// taken while this request is in flight attributes to its endpoint
		// and request ID (finq.Eval adds query_key below this).
		prof.Do(ctx, func(ctx context.Context) {
			// The request span: when the recorder is armed it mints this
			// request's own span ID (child of the caller's position, or of
			// the fresh root), and the returned context carries that
			// position so handler spans nest beneath it. The echoed
			// traceparent is exactly the position handlers inherit — a
			// downstream hop parenting on the echo attaches to this span.
			ctx, rsp := obs.StartSpanCtx(ctx, "server.request")
			if cur, ok := tracectx.From(ctx); ok {
				rw.Header().Set("traceparent", cur.Traceparent())
				if cur.State != "" {
					rw.Header().Set("tracestate", cur.State)
				}
			}
			next.ServeHTTP(rw, r.WithContext(ctx))
			rsp.End()
		}, "endpoint", st.endpoint, "request_id", id)
		dur := time.Since(t0)

		status := rw.status
		if status == 0 {
			status = http.StatusOK
		}
		mRequests.Inc()
		family := red[st.endpoint]
		family.requests.Inc()
		if status >= 400 {
			family.errors.Inc()
		}
		// The request ID rides along as the latency bucket's OpenMetrics
		// exemplar, so a scraped histogram links back to a concrete request.
		family.latency.ObserveExemplar(dur.Microseconds(), id)

		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("trace_id", st.traceID),
			slog.String("method", r.Method),
			slog.String("endpoint", st.endpoint),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("dur_us", dur.Microseconds()),
		}
		if st.rows > 0 {
			attrs = append(attrs, slog.Int64("rows", st.rows))
		}
		if st.stopped != "" {
			attrs = append(attrs, slog.String("stopped", st.stopped))
		}
		if st.shed {
			attrs = append(attrs, slog.Bool("shed", true))
		}
		if st.panicked {
			attrs = append(attrs, slog.Bool("panic", true))
		}
		level := slog.LevelInfo
		switch {
		case st.endpoint == "readyz" && status == http.StatusServiceUnavailable:
			// The expected answer mid-drain, polled by balancers; not an error.
			level = slog.LevelDebug
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		case !strings.HasPrefix(r.URL.Path, "/v1/"):
			// Health probes and metric scrapes are high-frequency noise;
			// keep them out of the info-level stream.
			level = slog.LevelDebug
		}
		s.logger().LogAttrs(ctx, level, "request", attrs...)

		// Tail sampling on the /v1/ endpoints: retain the span subtree of
		// slow requests, errored requests (sheds excluded — a 429 carries no
		// evaluation, and overload would flood the reservoir), and the first
		// request seen for each query key. A request matching several
		// reasons records under the highest-priority one, but its query key
		// is marked seen either way, so the first-key budget isn't spent on
		// a key whose trace is already retained.
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			firstKey := st.queryKey != "" && s.markFirstSeen(st.queryKey)
			reason := ""
			switch {
			case dur >= s.cfg.SlowRequest:
				reason = ReasonSlow
			case status >= 400 && !st.shed:
				reason = ReasonError
			case firstKey:
				reason = ReasonFirstKey
			}
			if reason != "" {
				s.captureTail(ctx, st, status, dur, reason)
			}
		}
	})
}
