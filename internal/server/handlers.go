package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	finq "repro"
	"repro/internal/domain"
	"repro/internal/obs/qstats"
)

// EvalRequest is the body of POST /v1/eval. Formula syntax, state format,
// and budget semantics are exactly the library's: the request is a wire
// form of finq.Request.
type EvalRequest struct {
	// Domain names a registered domain (GET /v1/domains lists them).
	Domain string `json:"domain"`
	// Formula is the query in the domain's concrete syntax.
	Formula string `json:"formula"`
	// State is the database state in the stateJSON format; omitted means
	// the empty state.
	State json.RawMessage `json:"state,omitempty"`
	// Mode is "active" (default) or "enumerate".
	Mode string `json:"mode,omitempty"`
	// Workers > 1 fans active-domain evaluation over a worker pool.
	Workers int `json:"workers,omitempty"`
	// Budget bounds enumerate mode; omitted means the default budget.
	Budget *BudgetJSON `json:"budget,omitempty"`
	// Profile asks for a per-node EXPLAIN profile in the response.
	Profile bool `json:"profile,omitempty"`
}

// BudgetJSON is the wire form of an enumeration budget.
type BudgetJSON struct {
	Rows  int `json:"rows"`
	Probe int `json:"probe"`
}

// decodeBody unmarshals a request body strictly, so misspelled fields are
// 400s instead of silently ignored options.
func decodeBody(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// parseDomainFormula resolves the domain and parses the formula, treating
// the state's database constants as constant symbols when a state is
// present.
func parseDomainFormula(domainName, formula string, st *finq.State) (finq.DomainInfo, *finq.Formula, error) {
	d, err := finq.Lookup(domainName)
	if err != nil {
		return finq.DomainInfo{}, nil, errf(http.StatusBadRequest, "%v", err)
	}
	var f *finq.Formula
	if st != nil && len(st.Scheme().Constants) > 0 {
		f, err = d.ParseWithConstants(formula, st.Scheme().Constants...)
	} else {
		f, err = d.Parse(formula)
	}
	if err != nil {
		return finq.DomainInfo{}, nil, errf(http.StatusBadRequest, "parsing formula: %v", err)
	}
	return d, f, nil
}

func (s *Server) handleEval(ctx context.Context, body []byte) (any, error) {
	var req EvalRequest
	if err := decodeBody(body, &req); err != nil {
		return nil, err
	}
	var st *finq.State
	if len(req.State) > 0 {
		d, err := finq.Lookup(req.Domain)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		st, err = finq.ParseState(d, req.State)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
	}
	d, f, err := parseDomainFormula(req.Domain, req.Formula, st)
	if err != nil {
		return nil, err
	}
	lreq := finq.Request{
		Domain:  req.Domain,
		State:   st,
		Formula: f,
		Mode:    finq.EvalMode(req.Mode),
		Workers: req.Workers,
		Profile: req.Profile,
	}
	if req.Budget != nil {
		lreq.Budget = &finq.EnumerationBudget{Rows: req.Budget.Rows, Probe: req.Budget.Probe}
	}
	// Feed the tail sampler: the canonical key marks this request as a
	// sighting of its query, so each distinct query's first request gets a
	// retained trace.
	noteQueryKey(ctx, f.CanonicalKey())
	res, err := finq.Eval(ctx, lreq)
	if err != nil {
		return nil, err
	}
	// Feed the access log: row cardinality and (for partial results) what
	// stopped the evaluation.
	if res.Answer != nil {
		noteRows(ctx, int64(res.Answer.Rows.Len()))
	}
	noteStopped(ctx, res.Stopped)
	return finq.EncodeResult(d, res), nil
}

// DecideRequest is the body of POST /v1/decide.
type DecideRequest struct {
	Domain   string `json:"domain"`
	Sentence string `json:"sentence"`
}

// DecideResponse is its answer.
type DecideResponse struct {
	Truth bool `json:"truth"`
}

func (s *Server) handleDecide(ctx context.Context, body []byte) (any, error) {
	var req DecideRequest
	if err := decodeBody(body, &req); err != nil {
		return nil, err
	}
	d, f, err := parseDomainFormula(req.Domain, req.Sentence, nil)
	if err != nil {
		return nil, err
	}
	truth, err := domain.DecideCtx(ctx, d.Decider, f)
	if err != nil {
		return nil, err
	}
	return DecideResponse{Truth: truth}, nil
}

// QERequest is the body of POST /v1/qe.
type QERequest struct {
	Domain  string `json:"domain"`
	Formula string `json:"formula"`
}

// QEResponse carries the quantifier-free equivalent, rendered in the
// domain's concrete syntax.
type QEResponse struct {
	Formula string `json:"formula"`
}

func (s *Server) handleQE(ctx context.Context, body []byte) (any, error) {
	var req QERequest
	if err := decodeBody(body, &req); err != nil {
		return nil, err
	}
	d, f, err := parseDomainFormula(req.Domain, req.Formula, nil)
	if err != nil {
		return nil, err
	}
	g, err := domain.EliminateCtx(ctx, d.Eliminator, f)
	if err != nil {
		return nil, err
	}
	return QEResponse{Formula: g.String()}, nil
}

// SafetyRequest is the body of POST /v1/safety.
type SafetyRequest struct {
	Domain  string          `json:"domain"`
	Formula string          `json:"formula"`
	State   json.RawMessage `json:"state,omitempty"`
}

// SafetyResponse reports the relative-safety verdict: "holds" (the answer
// is finite in this state), "fails", or "unknown" (the budgeted
// semi-decision over the trace domain gave up).
type SafetyResponse struct {
	Verdict finq.Verdict `json:"verdict"`
}

func (s *Server) handleSafety(ctx context.Context, body []byte) (any, error) {
	var req SafetyRequest
	if err := decodeBody(body, &req); err != nil {
		return nil, err
	}
	d, err := finq.Lookup(req.Domain)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	st := finq.NewState(finq.MustScheme(map[string]int{}))
	if len(req.State) > 0 {
		st, err = finq.ParseState(d, req.State)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
	}
	_, f, err := parseDomainFormula(req.Domain, req.Formula, st)
	if err != nil {
		return nil, err
	}
	// RelativeSafety has no context parameter; run it aside and give up at
	// the deadline. The analysis goroutine delivers into a buffered channel,
	// so an abandoned one still exits when it finishes.
	type outcome struct {
		verdict finq.Verdict
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := finq.RelativeSafety(d, st, f)
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, out.err
		}
		return SafetyResponse{Verdict: out.verdict}, nil
	case <-ctx.Done():
		return nil, errf(http.StatusServiceUnavailable, "safety analysis exceeded the deadline: %v", ctx.Err())
	}
}

// DomainJSON is one entry of GET /v1/domains.
type DomainJSON struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := []DomainJSON{}
	for _, d := range finq.Domains() {
		out = append(out, DomainJSON{Name: d.Name, Doc: d.Doc})
	}
	writeJSON(w, http.StatusOK, out)
}

// QueryStatsResponse is the body of GET /v1/stats/queries.
type QueryStatsResponse struct {
	By      string             `json:"by"`
	Queries []qstats.EntryView `json:"queries"`
}

// handleQueryStats serves GET /v1/stats/queries: the top-K per-query
// aggregates from the qstats registry, ordered by ?by=latency (default),
// count, or selectivity; ?k= bounds the result (default 20, <= 0 for
// all).
func (s *Server) handleQueryStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	by := r.URL.Query().Get("by")
	if by == "" {
		by = qstats.ByLatency
	}
	k := 20
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad k %q: %v", kq, err)
			return
		}
		k = n
	}
	entries, err := qstats.Default().TopK(by, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if entries == nil {
		entries = []qstats.EntryView{}
	}
	writeJSON(w, http.StatusOK, QueryStatsResponse{By: by, Queries: entries})
}

// handleDebugQueries serves GET /debug/queries: the same per-query stats
// as /v1/stats/queries rendered as a text table for humans.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	by := r.URL.Query().Get("by")
	entries, err := qstats.Default().TopK(by, 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	qstats.WriteTable(w, entries)
}
