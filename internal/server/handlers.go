package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	finq "repro"
	"repro/apiv1"
	"repro/internal/domain"
	"repro/internal/obs/qstats"
)

// decodeBody unmarshals a request body strictly, so misspelled fields are
// 400s instead of silently ignored options.
func decodeBody(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// parseDomainFormula resolves the domain and parses the formula, treating
// the state's database constants as constant symbols when a state is
// present.
func parseDomainFormula(domainName, formula string, st *finq.State) (finq.DomainInfo, *finq.Formula, error) {
	d, err := finq.Lookup(domainName)
	if err != nil {
		return finq.DomainInfo{}, nil, errf(http.StatusBadRequest, "%v", err)
	}
	var f *finq.Formula
	if st != nil && len(st.Scheme().Constants) > 0 {
		f, err = d.ParseWithConstants(formula, st.Scheme().Constants...)
	} else {
		f, err = d.Parse(formula)
	}
	if err != nil {
		return finq.DomainInfo{}, nil, errf(http.StatusBadRequest, "parsing formula: %v", err)
	}
	return d, f, nil
}

// parseStateOpt parses an optional state body over the named domain; no
// state means nil (the library's empty-state default).
func parseStateOpt(domainName string, raw json.RawMessage) (*finq.State, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	d, err := finq.Lookup(domainName)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	st, err := finq.ParseState(d, raw)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	return st, nil
}

// libRequest converts the wire form of one evaluation into the library's.
func libRequest(domainName string, st *finq.State, f *finq.Formula,
	mode string, workers int, budget *apiv1.Budget, profile bool) finq.Request {

	lreq := finq.Request{
		Domain:  domainName,
		State:   st,
		Formula: f,
		Mode:    finq.EvalMode(mode),
		Workers: workers,
		Profile: profile,
	}
	if budget != nil {
		lreq.Budget = &finq.EnumerationBudget{Rows: budget.Rows, Probe: budget.Probe}
	}
	return lreq
}

func (s *Server) handleEval(ctx context.Context, env *handlerEnv) (any, error) {
	var req apiv1.EvalRequest
	if err := decodeBody(env.body, &req); err != nil {
		return nil, err
	}
	st, err := parseStateOpt(req.Domain, req.State)
	if err != nil {
		return nil, err
	}
	d, f, err := parseDomainFormula(req.Domain, req.Formula, st)
	if err != nil {
		return nil, err
	}
	lreq := libRequest(req.Domain, st, f, req.Mode, req.Workers, req.Budget, req.Profile)
	// Feed the tail sampler: the canonical key marks this request as a
	// sighting of its query, so each distinct query's first request gets a
	// retained trace.
	noteQueryKey(ctx, f.CanonicalKey())
	if enc := streamEncoding(env.r); enc != "" {
		return s.streamEval(ctx, env, enc, d, lreq)
	}
	res, err := finq.Eval(ctx, lreq)
	if err != nil {
		return nil, err
	}
	// Feed the access log: row cardinality and (for partial results) what
	// stopped the evaluation.
	if res.Answer != nil {
		noteRows(ctx, int64(res.Answer.Rows.Len()))
	}
	noteStopped(ctx, res.Stopped)
	return finq.EncodeResult(d, res), nil
}

func (s *Server) handleDecide(ctx context.Context, env *handlerEnv) (any, error) {
	var req apiv1.DecideRequest
	if err := decodeBody(env.body, &req); err != nil {
		return nil, err
	}
	d, f, err := parseDomainFormula(req.Domain, req.Sentence, nil)
	if err != nil {
		return nil, err
	}
	truth, err := domain.DecideCtx(ctx, d.Decider, f)
	if err != nil {
		return nil, err
	}
	return apiv1.DecideResponse{Truth: truth}, nil
}

func (s *Server) handleQE(ctx context.Context, env *handlerEnv) (any, error) {
	var req apiv1.QERequest
	if err := decodeBody(env.body, &req); err != nil {
		return nil, err
	}
	d, f, err := parseDomainFormula(req.Domain, req.Formula, nil)
	if err != nil {
		return nil, err
	}
	g, err := domain.EliminateCtx(ctx, d.Eliminator, f)
	if err != nil {
		return nil, err
	}
	return apiv1.QEResponse{Formula: g.String()}, nil
}

func (s *Server) handleSafety(ctx context.Context, env *handlerEnv) (any, error) {
	var req apiv1.SafetyRequest
	if err := decodeBody(env.body, &req); err != nil {
		return nil, err
	}
	d, err := finq.Lookup(req.Domain)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	st := finq.NewState(finq.MustScheme(map[string]int{}))
	if len(req.State) > 0 {
		st, err = finq.ParseState(d, req.State)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
	}
	_, f, err := parseDomainFormula(req.Domain, req.Formula, st)
	if err != nil {
		return nil, err
	}
	// RelativeSafety has no context parameter; run it aside and give up at
	// the deadline. The analysis goroutine delivers into a buffered channel,
	// so an abandoned one still exits when it finishes.
	type outcome struct {
		verdict finq.Verdict
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := finq.RelativeSafety(d, st, f)
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, out.err
		}
		return apiv1.SafetyResponse{Verdict: out.verdict}, nil
	case <-ctx.Done():
		return nil, errc(http.StatusServiceUnavailable, apiv1.CodeDeadline,
			"safety analysis exceeded the deadline: %v", ctx.Err())
	}
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := apiv1.DomainsResponse{}
	for _, d := range finq.Domains() {
		out = append(out, apiv1.Domain{Name: d.Name, Doc: d.Doc})
	}
	writeJSON(w, http.StatusOK, out)
}

// queryStatsJSON is the served shape of GET /v1/stats/queries; its wire
// contract is apiv1.QueryStatsResponse (Queries there is raw JSON so the
// client does not depend on the qstats internals).
type queryStatsJSON struct {
	By      string             `json:"by"`
	Queries []qstats.EntryView `json:"queries"`
}

// handleQueryStats serves GET /v1/stats/queries: the top-K per-query
// aggregates from the qstats registry, ordered by ?by=latency (default),
// count, or selectivity; ?k= bounds the result (default 20, <= 0 for
// all).
func (s *Server) handleQueryStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	by := r.URL.Query().Get("by")
	if by == "" {
		by = qstats.ByLatency
	}
	k := 20
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad k %q: %v", kq, err)
			return
		}
		k = n
	}
	entries, err := qstats.Default().TopK(by, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if entries == nil {
		entries = []qstats.EntryView{}
	}
	writeJSON(w, http.StatusOK, queryStatsJSON{By: by, Queries: entries})
}

// handleDebugQueries serves GET /debug/queries: the same per-query stats
// as /v1/stats/queries rendered as a text table for humans.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	by := r.URL.Query().Get("by")
	entries, err := qstats.Default().TopK(by, 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	qstats.WriteTable(w, entries)
}
