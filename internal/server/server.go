// Package server implements finqd, the query service: an HTTP/JSON front
// end over the finq facade. Every endpoint evaluates through
// finq.Eval (or the matching facade call) under the request's context, so
// a client deadline or disconnect stops the computation between rows,
// probes, and quantifier-elimination stages, and a deadline that expires
// mid-enumeration still returns the rows found so far as a partial result.
//
// Endpoints:
//
//	POST /v1/eval           evaluate a formula over a domain and state;
//	                        ?stream=1 or an Accept of application/x-ndjson
//	                        or application/x-finq-frames streams enumeration
//	                        rows as they are found (stream.go)
//	POST /v1/eval/batch     evaluate many queries against one shared state
//	                        under one per-batch deadline (batch.go)
//	POST /v1/decide         decide a pure-domain sentence
//	POST /v1/qe             quantifier-eliminate a formula
//	POST /v1/safety         relative-safety analysis of a query
//	GET  /v1/domains        list the registered domains
//	GET  /v1/stats/queries  per-query stats, top-K by latency/count/selectivity/allocs
//	GET  /v1/slo            SLO burn-rate summary per endpoint objective
//	GET  /v1/version        build identity (module version, VCS stamp, toolchain)
//	GET  /healthz           liveness (200 while the process serves HTTP)
//	GET  /readyz            readiness (503 once a drain begins)
//	GET  /debug/slow        tail-sampled request captures; no args lists
//	                        them, ?id= fetches one span subtree by request ID
//	GET  /debug/queries     per-query stats as a text table
//	GET  /debug/profiles    triggered CPU+heap profile captures; ?id=&kind=
//	                        downloads raw pprof bytes
//	POST /debug/profiles/capture  on-demand bounded CPU+heap capture
//	GET  /metrics           Prometheus metrics (also /debug/obs, /debug/pprof/)
//
// Every request is request-scoped observable: an ID (honored from
// X-Request-Id or minted) is echoed on the response, threaded through the
// evaluation context — so structured logs, obs spans, and flight-recorder
// events all carry it — reported in JSON error bodies, and logged in one
// access line per request alongside per-endpoint RED metrics. The latency
// histograms carry the ID onward as per-bucket OpenMetrics exemplars, and
// a tail sampler retains the full span subtree of slow, errored, and
// first-seen-query requests, so a latency bucket on /metrics leads to a
// concrete trace on /debug/slow by request ID.
//
// Concurrency is bounded by a worker pool: at most Workers requests
// evaluate at once, at most QueueDepth more wait for a slot, and anything
// beyond that is rejected with 429 so overload degrades by shedding rather
// than by queueing without bound. Handler panics become 500s. Shutdown
// flips /readyz, then drains in-flight requests.
//
// The wire contract — request and response bodies, the error envelope with
// its closed code set, the streaming line/frame types — is defined once in
// package apiv1; every handler builds against those types, and the typed
// client package decodes them.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/apiv1"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/trace"
)

// Config tunes the service. The zero value serves on an ephemeral local
// port with GOMAXPROCS workers and interactive-scale timeouts.
type Config struct {
	// Addr is the listen address; "" means "127.0.0.1:0".
	Addr string
	// Workers bounds concurrent evaluations; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// Workers already evaluating; past it requests get 429. <= 0 means
	// 2 * Workers.
	QueueDepth int
	// EvalTimeout bounds /v1/eval requests; <= 0 means 30s.
	EvalTimeout time.Duration
	// DecideTimeout bounds /v1/decide, /v1/qe, and /v1/safety requests;
	// <= 0 means 10s.
	DecideTimeout time.Duration
	// MaxBody bounds request bodies in bytes; <= 0 means 1 MiB.
	MaxBody int64
	// MaxBatchItems bounds the items of one POST /v1/eval/batch request;
	// <= 0 means 256.
	MaxBatchItems int
	// SlowRequest is the duration at or above which a request gets a
	// slow-query capture (span subtree + warning log); <= 0 means 1s.
	SlowRequest time.Duration
	// DrainGrace is how long Shutdown waits between flipping /readyz to
	// 503 and closing the listener, giving balancers time to stop routing;
	// 0 means no wait.
	DrainGrace time.Duration
	// Logger receives the access log and slow-request warnings; nil means
	// slog.Default() (which cliutil.Setup configures from -log-level and
	// -log-format).
	Logger *slog.Logger
	// ServiceName names this process in exported traces: the OTLP
	// service.name resource attribute of /debug/trace/export and the
	// process lane label of stitched multi-process traces. "" means
	// "finqd".
	ServiceName string
	// TraceRecorder routes this server's flight-recorder events to a
	// dedicated recorder instance, so several servers in one process
	// (tests, finqload shards) record into separate rings; nil means the
	// process-wide default recorder.
	TraceRecorder *trace.Recorder

	// SLOLatency enables the SLO burn-rate engine: each pooled endpoint
	// (eval, decide, qe, safety) gets a latency objective at this threshold
	// (bucket-rounded) and an error objective. <= 0 disables the engine
	// unless SLOObjectives is set explicitly.
	SLOLatency time.Duration
	// SLOLatencyTarget is the objective fraction of requests under
	// SLOLatency; <= 0 means 0.99.
	SLOLatencyTarget float64
	// SLOErrorTarget is the objective fraction of non-error requests;
	// <= 0 means 0.999, exactly 0 via the flag keeps the default.
	SLOErrorTarget float64
	// SLOObjectives overrides the per-endpoint objective construction
	// entirely (tests, unusual topologies).
	SLOObjectives []prof.Objective
	// SLOTick, SLOFastWindow, SLOSlowWindow, and SLOTripBurn tune the
	// engine's sampling and trip thresholds; zero values take the prof
	// package defaults (10s, 1m, 10m, burn 8).
	SLOTick       time.Duration
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
	SLOTripBurn   float64

	// ProfileCapture arms trigger-based profile capture on SLO trips
	// (manual POST /debug/profiles/capture works regardless). Default on;
	// the flag -profile-capture=false disarms.
	ProfileCaptureDisarmed bool
	// ProfileRing bounds retained captures; <= 0 means 8.
	ProfileRing int
	// ProfileCPUDuration bounds each capture's CPU window; <= 0 means 2s.
	ProfileCPUDuration time.Duration
	// ProfileCooldown suppresses repeat captures for one trigger reason;
	// <= 0 means 5m.
	ProfileCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.EvalTimeout <= 0 {
		c.EvalTimeout = 30 * time.Second
	}
	if c.DecideTimeout <= 0 {
		c.DecideTimeout = 10 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.SlowRequest <= 0 {
		c.SlowRequest = time.Second
	}
	if c.SLOLatencyTarget <= 0 {
		c.SLOLatencyTarget = 0.99
	}
	if c.ServiceName == "" {
		c.ServiceName = "finqd"
	}
	if c.SLOErrorTarget <= 0 {
		c.SLOErrorTarget = 0.999
	}
	return c
}

// Service metrics, on /metrics alongside the evaluator and decision-cache
// families (the deccache.hits / deccache.misses hit rate comes for free
// because the registry's deciders are process-wide, so the cache is shared
// across requests).
var (
	mRequests = obs.NewCounter("server.requests")
	mRejected = obs.NewCounter("server.rejected")
	mErrors   = obs.NewCounter("server.errors")
	mPanics   = obs.NewCounter("server.panics")
	gInflight = obs.NewGauge("server.inflight")
	hLatency  = obs.NewHistogram("server.latency_us")
)

func init() {
	obs.SetHelp("server.requests", "Total requests received, all endpoints.")
	obs.SetHelp("server.rejected", "Requests shed with 429 at the admission gate.")
	obs.SetHelp("server.errors", "Handler errors across the pooled endpoints.")
	obs.SetHelp("server.panics", "Handler panics converted to 500 responses.")
	obs.SetHelp("server.inflight", "Worker slots currently evaluating.")
	obs.SetHelp("server.latency_us", "Pooled-endpoint handler latency, microseconds.")
}

// Server is the finqd HTTP service. Create with New, run with Start, stop
// with Shutdown.
type Server struct {
	cfg      Config
	slots    chan struct{}
	queued   atomic.Int64
	http     *http.Server
	ln       net.Listener
	draining atomic.Bool
	sampStop func()
	// rec is the server's flight recorder (Config.TraceRecorder, or the
	// process default): request spans record into it, /debug/trace/export
	// reads it, and the tail sampler snapshots subtrees from it.
	rec *trace.Recorder
	tailSampler

	// Profile-guided observability: the capture store always exists (the
	// manual capture endpoint needs no SLO); the engine exists only when
	// objectives are configured, and Start/Shutdown drive its ticker.
	profStore  *prof.Store
	objectives []prof.Objective
	sloEngine  *prof.Engine
	sloStop    func()
}

// New builds a server from the config. Nothing listens until Start.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, slots: make(chan struct{}, cfg.Workers)}
	s.rec = cfg.TraceRecorder
	if s.rec == nil {
		s.rec = trace.Default()
	}
	s.profStore = prof.NewStore(prof.StoreConfig{
		Ring:        cfg.ProfileRing,
		CPUDuration: cfg.ProfileCPUDuration,
		Cooldown:    cfg.ProfileCooldown,
	})
	if cfg.ProfileCaptureDisarmed {
		s.profStore.Disarm()
	}
	s.objectives = buildObjectives(cfg)
	if len(s.objectives) > 0 {
		eng, err := prof.NewEngine(prof.EngineConfig{
			Objectives: s.objectives,
			Source:     sloSource(s.objectives),
			Tick:       cfg.SLOTick,
			FastWindow: cfg.SLOFastWindow,
			SlowWindow: cfg.SLOSlowWindow,
			TripBurn:   cfg.SLOTripBurn,
			OnTrip:     s.onSLOTrip,
		})
		if err != nil {
			// Objectives come from flags or code; a bad set is a programming
			// or deployment error, surfaced at construction.
			panic(fmt.Sprintf("server: building SLO engine: %v", err))
		}
		s.sloEngine = eng
	}
	s.http = &http.Server{Handler: s.Handler()}
	return s
}

// Handler returns the full route table, wrapped (outside in) in the
// instrument middleware — request ID, access log, RED metrics, slow-query
// capture — and panic recovery. It is usable directly with httptest
// servers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	debug := obs.Handler()
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	mux.HandleFunc("/debug/slow", s.handleSlow)
	mux.HandleFunc("/debug/trace/export", s.handleTraceExport)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/profiles", s.handleProfiles)
	mux.HandleFunc("/debug/profiles/capture", s.handleProfileCapture)
	mux.HandleFunc("/v1/domains", s.handleDomains)
	mux.HandleFunc("/v1/stats/queries", s.handleQueryStats)
	mux.HandleFunc("/v1/slo", s.handleSLO)
	mux.HandleFunc("/v1/version", s.handleVersion)
	mux.Handle("/v1/eval", s.endpoint("eval", s.cfg.EvalTimeout, s.handleEval))
	mux.Handle("/v1/eval/batch", s.endpoint("batch", s.cfg.EvalTimeout, s.handleBatch))
	mux.Handle("/v1/decide", s.endpoint("decide", s.cfg.DecideTimeout, s.handleDecide))
	mux.Handle("/v1/qe", s.endpoint("qe", s.cfg.DecideTimeout, s.handleQE))
	mux.Handle("/v1/safety", s.endpoint("safety", s.cfg.DecideTimeout, s.handleSafety))
	return s.instrument(s.recovered(mux))
}

// Start listens on the configured address and serves in the background,
// returning the bound address (useful with a ":0" config). It also starts
// the runtime sampler feeding the runtime.* gauges on /metrics.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.sampStop = obs.StartRuntimeSampler(0)
	if s.sloEngine != nil {
		s.sloStop = s.sloEngine.Start()
	}
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: it flips /readyz to 503, waits DrainGrace
// (so a balancer polling readiness stops routing before the listener
// closes), then stops accepting connections and waits — up to the
// context's deadline — for in-flight requests to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	if s.cfg.DrainGrace > 0 {
		select {
		case <-time.After(s.cfg.DrainGrace):
		case <-ctx.Done():
		}
	}
	if s.sampStop != nil {
		defer s.sampStop()
	}
	if s.sloStop != nil {
		s.sloStop()
	}
	return s.http.Shutdown(ctx)
}

// apiError carries an HTTP status and a machine-readable code from the
// apiv1 closed set out of a handler. Handlers return it for client
// mistakes; any other error is a 422 eval_failed (the request was
// well-formed but the evaluation failed).
type apiError struct {
	status  int
	errCode string
	msg     string
}

func (e *apiError) Error() string { return e.msg }

// errf builds an apiError whose code is derived from the status (the
// common case: one code per status).
func errf(status int, format string, args ...any) error {
	return &apiError{status: status, errCode: codeForStatus(status), msg: fmt.Sprintf(format, args...)}
}

// errc builds an apiError with an explicit code, for the statuses that
// carry more than one (503 is "unavailable" or "client_gone" or
// "deadline" depending on what happened).
func errc(status int, errCode, format string, args ...any) error {
	return &apiError{status: status, errCode: errCode, msg: fmt.Sprintf(format, args...)}
}

// codeForStatus maps an HTTP status onto its default machine code from
// the apiv1 closed set.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return apiv1.CodeBadRequest
	case http.StatusNotFound:
		return apiv1.CodeNotFound
	case http.StatusMethodNotAllowed:
		return apiv1.CodeMethodNotAllowed
	case http.StatusConflict:
		return apiv1.CodeConflict
	case http.StatusRequestEntityTooLarge:
		return apiv1.CodePayloadTooLarge
	case http.StatusUnprocessableEntity:
		return apiv1.CodeEvalFailed
	case http.StatusTooManyRequests:
		return apiv1.CodeOverCapacity
	case http.StatusServiceUnavailable:
		return apiv1.CodeUnavailable
	default:
		return apiv1.CodeInternal
	}
}

// handlerEnv is what a pooled endpoint's handler gets to work with: the
// decoded-size-checked body plus the raw request and writer, so the eval
// handler can negotiate streaming and take over the response.
type handlerEnv struct {
	w    http.ResponseWriter
	r    *http.Request
	body []byte
}

// streamed is a handler's sentinel return value: the handler already
// wrote the response (a streaming body), so endpoint must not encode
// anything.
type streamed struct{}

// handlerFunc is a pooled endpoint's core: decode the body, compute under
// the deadline, return the response value (encoded as JSON) or an error —
// or streamed{} after writing the response directly.
type handlerFunc func(ctx context.Context, env *handlerEnv) (any, error)

// endpoint wraps a handler with the service plumbing, in order: method
// check, admission control (queue-depth limit then worker slot), body
// limit, per-endpoint deadline, span + metrics, JSON encoding.
func (s *Server) endpoint(name string, timeout time.Duration, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		// Admission: the queued count includes the requests holding slots,
		// so the capacity line is Workers evaluating + QueueDepth waiting.
		n := s.queued.Add(1)
		defer s.queued.Add(-1)
		if n > int64(s.cfg.Workers+s.cfg.QueueDepth) {
			mRejected.Inc()
			if st := stateFrom(r.Context()); st != nil {
				st.shed = true
			}
			writeError(w, http.StatusTooManyRequests,
				"server at capacity (%d evaluating, %d queued); retry later", s.cfg.Workers, s.cfg.QueueDepth)
			return
		}
		select {
		case s.slots <- struct{}{}:
		case <-r.Context().Done():
			// The client gave up while queued; nothing is listening for
			// the response, but complete the exchange anyway.
			writeErrorCode(w, http.StatusServiceUnavailable, apiv1.CodeClientGone,
				"client went away while queued")
			return
		}
		defer func() { <-s.slots }()
		gInflight.Set(int64(len(s.slots)))
		defer func() { gInflight.Set(int64(len(s.slots) - 1)) }()

		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		if int64(len(body)) > s.cfg.MaxBody {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBody)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		// The context carries the request ID and trace position
		// (instrument middleware), so this span's begin/end trace events —
		// and every evaluator span below it — are greppable by ID and form
		// a tree under the request span in the exported trace.
		ctx, sp := obs.StartSpanCtx(ctx, "server."+name)
		t0 := time.Now()
		out, err := h(ctx, &handlerEnv{w: w, r: r, body: body})
		sp.End()
		hLatency.ObserveCtx(ctx, time.Since(t0).Microseconds())
		if err != nil {
			mErrors.Inc()
			if ae, ok := err.(*apiError); ok {
				writeErrorCode(w, ae.status, ae.errCode, "%s", ae.msg)
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		if _, ok := out.(streamed); ok {
			return // the handler wrote the response itself
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// recovered turns handler panics into 500 responses instead of killed
// connections, counts them, and flags the request state so the access log
// carries panic=true.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				mPanics.Inc()
				if st := stateFrom(r.Context()); st != nil {
					st.panicked = true
				}
				writeError(w, http.StatusInternalServerError, "internal error: %v", p)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// writeError writes the uniform apiv1 error envelope with the code
// derived from the status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorCode(w, status, codeForStatus(status), format, args...)
}

// writeErrorCode writes the uniform apiv1 error envelope:
//
//	{"error": {"code": "...", "message": "...", "request_id": "..."}}
//
// Every error site goes through here — 429 sheds and panic 500s included
// — so clients see one error shape with a code from the closed set.
func writeErrorCode(w http.ResponseWriter, status int, errCode, format string, args ...any) {
	body := apiv1.ErrorEnvelope{Error: apiv1.Error{
		Code:    errCode,
		Message: fmt.Sprintf(format, args...),
	}}
	// The instrument middleware's writer carries the request and trace IDs
	// down to every error site — including 429 sheds and panic 500s —
	// without each call threading a context.
	if rw, ok := w.(*respWriter); ok {
		body.Error.RequestID = rw.reqID
		body.Error.TraceID = rw.traceID
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// The response value failed to encode; send a hand-built envelope so
		// even this path keeps the error shape.
		http.Error(w, fmt.Sprintf(`{"error": {"code": %q, "message": %q}}`,
			apiv1.CodeInternal, err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
