package server

import (
	"context"
	"net/http"

	finq "repro"
	"repro/apiv1"
	"repro/internal/obs"
)

// POST /v1/eval/batch: many queries evaluated against one shared state in
// a single request. The wire cost of serving N small queries one request
// each — N TCP round trips, N handler chains, N parses of the same state
// — collapses to one: the state is parsed once, and the items run
// sequentially on the request's worker slot under one per-batch deadline
// (the eval timeout), so a batch occupies exactly the capacity of one
// evaluating request.
//
// Failure is item-scoped: a formula that does not parse or an evaluation
// that errors marks that item and the batch continues. When the deadline
// expires mid-batch, the item in flight comes back as a partial result
// (its evaluation stopped between rows or probes, exactly as a
// single-request deadline would), the items after it carry a "deadline"
// error, and the response's Stopped says "deadline" — the batch analogue
// of a partial evaluation result.
func (s *Server) handleBatch(ctx context.Context, env *handlerEnv) (any, error) {
	var req apiv1.BatchRequest
	if err := decodeBody(env.body, &req); err != nil {
		return nil, err
	}
	if len(req.Items) == 0 {
		return nil, errf(http.StatusBadRequest, "empty batch: items is required")
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		return nil, errf(http.StatusBadRequest,
			"batch has %d items; the limit is %d", len(req.Items), s.cfg.MaxBatchItems)
	}
	// Resolve the domain and parse the shared state once, up front: a batch
	// whose domain or state is broken is a bad request, not N failed items.
	d, err := finq.Lookup(req.Domain)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	st, err := parseStateOpt(req.Domain, req.State)
	if err != nil {
		return nil, err
	}

	// Batches replay corpora with far fewer distinct formulas than items,
	// so parse each distinct formula (and compute its canonical key) once
	// per batch — the formula-side analogue of the shared state parse.
	parsed := make(map[string]batchFormula, len(req.Items))

	out := apiv1.BatchResponse{Items: make([]apiv1.BatchItemResult, len(req.Items))}
	for i, item := range req.Items {
		if ctx.Err() != nil {
			// The per-batch deadline expired (or the client went away)
			// before this item started; mark it and the rest without
			// spending time on them.
			out.Items[i].Error = &apiv1.Error{
				Code:    apiv1.CodeDeadline,
				Message: "batch deadline expired before this item ran",
			}
			out.Stopped = "deadline"
			continue
		}
		out.Items[i] = s.evalBatchItem(ctx, d, st, req.Domain, item, parsed)
		if r := out.Items[i].Result; r != nil && (r.Stopped == "deadline" || r.Stopped == "canceled") {
			out.Stopped = "deadline"
		}
	}
	// Access-log rollup: total rows across items, plus the batch-level stop.
	var rows int64
	for _, it := range out.Items {
		if it.Result != nil && it.Result.Answer != nil {
			rows += int64(len(it.Result.Answer.Rows))
		}
	}
	noteRows(ctx, rows)
	noteStopped(ctx, out.Stopped)
	return out, nil
}

// batchFormula is one distinct formula's parse outcome, memoized for the
// life of a batch.
type batchFormula struct {
	f   *finq.Formula
	key string
	err error
}

// evalBatchItem runs one item of a batch, folding its failure into an
// item-scoped wire error. The item's formula parses against the shared
// state's constants, exactly as a single /v1/eval request would — but at
// most once per distinct formula text per batch.
func (s *Server) evalBatchItem(ctx context.Context, d finq.DomainInfo, st *finq.State,
	domainName string, item apiv1.BatchItem, parsed map[string]batchFormula) apiv1.BatchItemResult {

	bf, ok := parsed[item.Formula]
	if !ok {
		_, f, err := parseDomainFormula(domainName, item.Formula, st)
		bf = batchFormula{f: f, err: err}
		if err == nil {
			bf.key = f.CanonicalKey()
		}
		parsed[item.Formula] = bf
	}
	if bf.err != nil {
		return apiv1.BatchItemResult{Error: itemError(bf.err)}
	}
	// Each item evaluates under its own span — a child of the batch
	// request's span, with a minted span ID when the request carries a
	// trace — and the item result quotes that ID, so one item of a slow
	// batch can be located in the exported trace directly.
	ctx, sp := obs.StartSpanCtx(ctx, "server.batch_item")
	defer sp.End()
	// The first item seen for a query key feeds the tail sampler, same as
	// a single request; with several distinct formulas per batch the last
	// key wins the capture, but every key is marked seen.
	noteQueryKey(ctx, bf.key)
	res, err := finq.Eval(ctx, libRequest(domainName, st, bf.f, item.Mode, item.Workers, item.Budget, item.Profile))
	if err != nil {
		return apiv1.BatchItemResult{Error: itemError(err), SpanID: sp.SpanID()}
	}
	return apiv1.BatchItemResult{Result: finq.EncodeResult(d, res), SpanID: sp.SpanID()}
}

// itemError converts a handler error into the item-scoped wire error: an
// apiError keeps its code, anything else is an eval failure.
func itemError(err error) *apiv1.Error {
	if ae, ok := err.(*apiError); ok {
		return &apiv1.Error{Code: ae.errCode, Message: ae.msg}
	}
	return &apiv1.Error{Code: apiv1.CodeEvalFailed, Message: err.Error()}
}
