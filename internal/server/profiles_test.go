package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/apiv1"
	"repro/internal/obs/prof"
)

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad JSON from %s: %v in %s", url, err, data)
		}
	}
	return resp.StatusCode
}

// TestVersionEndpoint: GET /v1/version serves the build identity.
func TestVersionEndpoint(t *testing.T) {
	_, base := startServer(t, Config{})
	var v apiv1.VersionResponse
	if code := getJSON(t, base+"/v1/version", &v); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if v.Version == "" || v.GoVersion == "" || v.Line == "" {
		t.Fatalf("incomplete version: %+v", v)
	}
	if !strings.HasPrefix(v.Line, "finq ") {
		t.Fatalf("version line %q", v.Line)
	}
	resp, err := http.Post(base+"/v1/version", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/version: status %d", resp.StatusCode)
	}
}

// TestSLOEndpointDisabled: with no objectives configured, /v1/slo answers
// {"enabled": false} rather than erroring.
func TestSLOEndpointDisabled(t *testing.T) {
	_, base := startServer(t, Config{})
	var v SLOResponse
	if code := getJSON(t, base+"/v1/slo", &v); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if v.Enabled || len(v.Endpoints) != 0 {
		t.Fatalf("disabled SLO reported: %+v", v)
	}
}

// TestSLOEndpointEnabled: SLOLatency constructs one objective per pooled
// endpoint and /v1/slo reports the engine's windows and burn states.
func TestSLOEndpointEnabled(t *testing.T) {
	_, base := startServer(t, Config{
		SLOLatency: 250 * time.Millisecond,
		SLOTick:    time.Hour, // only the immediate Start tick runs
	})
	var v SLOResponse
	if code := getJSON(t, base+"/v1/slo", &v); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !v.Enabled || v.TripBurn <= 0 || v.TickMS <= 0 {
		t.Fatalf("SLO header wrong: %+v", v)
	}
	if len(v.Endpoints) != len(sloEndpoints) {
		t.Fatalf("got %d endpoints, want %d: %+v", len(v.Endpoints), len(sloEndpoints), v)
	}
	for _, ep := range v.Endpoints {
		if ep.Latency == nil || ep.Errors == nil {
			t.Fatalf("endpoint %s missing dimensions: %+v", ep.Endpoint, ep)
		}
		if ep.Latency.Target != 0.99 || ep.Errors.Target != 0.999 {
			t.Fatalf("endpoint %s default targets wrong: %+v", ep.Endpoint, ep)
		}
		// 250ms rounds up to the enclosing power-of-two bucket bound.
		if ep.Latency.EffectiveUS < ep.Latency.ThresholdUS {
			t.Fatalf("effective threshold below configured: %+v", ep.Latency)
		}
	}
}

// TestManualProfileCapture: POST /debug/profiles/capture records a
// CPU+heap pair, listable and downloadable by id.
func TestManualProfileCapture(t *testing.T) {
	_, base := startServer(t, Config{ProfileCPUDuration: 60 * time.Millisecond})

	var listing ProfilesResponse
	if code := getJSON(t, base+"/debug/profiles", &listing); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if !listing.Armed || len(listing.Captures) != 0 {
		t.Fatalf("fresh store: %+v", listing)
	}

	resp, err := http.Post(base+"/debug/profiles/capture?dur_ms=60", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture status %d: %s", resp.StatusCode, data)
	}
	var c prof.Capture
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatalf("capture response: %v in %s", err, data)
	}
	if c.ID == "" || c.Reason != "manual" || c.CPUBytes <= 0 || c.HeapBytes <= 0 {
		t.Fatalf("capture metadata: %+v", c)
	}
	// The manual capture records the POSTing request's own ID.
	if c.RequestID == "" {
		t.Fatalf("manual capture lost its request id: %+v", c)
	}

	if code := getJSON(t, base+"/debug/profiles", &listing); code != http.StatusOK || len(listing.Captures) != 1 {
		t.Fatalf("after capture: %d %+v", code, listing)
	}
	var got prof.Capture
	if code := getJSON(t, base+"/debug/profiles?id="+c.ID, &got); code != http.StatusOK || got.ID != c.ID {
		t.Fatalf("get by id: %d %+v", code, got)
	}

	for _, kind := range []string{"cpu", "heap"} {
		resp, err := http.Get(base + "/debug/profiles?id=" + c.ID + "&kind=" + kind)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(payload) == 0 {
			t.Fatalf("%s download: status %d len %d", kind, resp.StatusCode, len(payload))
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("%s content type %q", kind, ct)
		}
		if _, err := prof.SampleLabels(payload); err != nil {
			t.Fatalf("%s payload does not parse as pprof: %v", kind, err)
		}
	}

	if code := getJSON(t, base+"/debug/profiles?id=prof-9999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", code)
	}
	if code := getJSON(t, base+"/debug/profiles?id="+c.ID+"&kind=goroutine", nil); code != http.StatusBadRequest {
		t.Fatalf("bad kind: status %d", code)
	}
	resp2, err := http.Post(base+"/debug/profiles/capture?dur_ms=600000", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap duration: status %d", resp2.StatusCode)
	}
}

// TestSLOTripCaptureLoop is the acceptance test for the profile-guided
// loop: hammering a deliberately slow query trips the eval latency SLO
// burn, the trip triggers a CPU+heap capture that appears in
// GET /debug/profiles cross-linked to the tail-sampler capture and request
// ID that evidenced it, and the downloaded CPU profile contains samples
// labeled with the query's query_key.
func TestSLOTripCaptureLoop(t *testing.T) {
	prevProf := prof.SetEnabled(true)
	defer prof.SetEnabled(prevProf)

	_, base := startServer(t, Config{
		Workers: 1,
		// Each request enumerates (slowEvalBody never completes on its own)
		// until this deadline, so every request is ~100ms of CPU-bound,
		// pprof-labeled evaluation answered 200 with a partial result. The
		// pace matters: every request is also a slow-request tail capture,
		// and the capture the trip cross-links must still be inside the
		// 16-slot reservoir when the test fetches it after the ~900ms
		// profile window (~10 captures accrue in that time at this rate).
		EvalTimeout: 100 * time.Millisecond,
		// Aggressive SLO so the trip happens in tens of milliseconds of
		// traffic: every hot request (well over 1ms) is "bad" against a
		// 50% target, so the burn is 2.0 ≥ 1.2.
		SLOLatency:       time.Millisecond,
		SLOLatencyTarget: 0.5,
		SLOTick:          25 * time.Millisecond,
		SLOFastWindow:    100 * time.Millisecond,
		SLOSlowWindow:    200 * time.Millisecond,
		SLOTripBurn:      1.2,
		// The capture window is long enough that the hammer keeps labeled
		// CPU work on the profiler while it runs.
		ProfileCPUDuration: 900 * time.Millisecond,
		ProfileCooldown:    time.Hour,
		// Hot requests are also slow requests, so the tail sampler retains
		// the trace the capture cross-links to.
		SlowRequest: time.Millisecond,
	})

	// Hammer the slow query until the test is done; the trip, the capture
	// window, and any fallback capture all see live labeled work.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/eval", "application/json", strings.NewReader(slowEvalBody))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	// The burn trips within a few ticks; the async capture needs its 900ms
	// window after that.
	var capture prof.Capture
	waitFor(t, "SLO-triggered profile capture", func() bool {
		var listing ProfilesResponse
		if getJSON(t, base+"/debug/profiles", &listing) != http.StatusOK {
			return false
		}
		for _, c := range listing.Captures {
			if strings.HasPrefix(c.Reason, "slo:eval:") {
				capture = c
				return true
			}
		}
		return false
	})

	if capture.Endpoint != "eval" {
		t.Fatalf("capture endpoint %q: %+v", capture.Endpoint, capture)
	}
	if capture.RequestID == "" {
		t.Fatalf("capture not linked to a request: %+v", capture)
	}
	if capture.QueryKey == "" || capture.TailID == "" {
		t.Fatalf("capture not cross-linked to the tail sampler: %+v", capture)
	}
	// The tail-sampler capture it links to must exist and agree on the key.
	var tail TailCapture
	if code := getJSON(t, base+"/debug/slow?id="+capture.TailID, &tail); code != http.StatusOK {
		t.Fatalf("linked tail capture %q missing: status %d", capture.TailID, code)
	}
	if tail.QueryKey != capture.QueryKey {
		t.Fatalf("tail capture key %q != profile capture key %q", tail.QueryKey, capture.QueryKey)
	}

	// The SLO summary reports the latched trip.
	var slo SLOResponse
	if code := getJSON(t, base+"/v1/slo", &slo); code != http.StatusOK || !slo.Enabled {
		t.Fatalf("slo status: %d %+v", code, slo)
	}
	var evalStatus *prof.EndpointStatus
	for i := range slo.Endpoints {
		if slo.Endpoints[i].Endpoint == "eval" {
			evalStatus = &slo.Endpoints[i]
		}
	}
	if evalStatus == nil || evalStatus.Latency == nil || evalStatus.Latency.LastTripUnixMS == 0 {
		t.Fatalf("eval latency trip not reported: %+v", slo)
	}

	// The downloaded CPU profile must carry samples labeled with the
	// query's key. Sampling is statistical, so if the triggered capture's
	// window missed (possible on a loaded CI box), fall back to manual
	// captures while the hammer is still running.
	wantLabel := prof.QueryKeyLabel(capture.QueryKey)
	countLabeled := func(id string) int {
		resp, err := http.Get(base + "/debug/profiles?id=" + id + "&kind=cpu")
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cpu download for %s: status %d", id, resp.StatusCode)
		}
		n, err := prof.HasLabel(payload, "query_key", wantLabel)
		if err != nil {
			t.Fatalf("parsing cpu profile %s: %v", id, err)
		}
		return n
	}
	labeled := countLabeled(capture.ID)
	for try := 0; labeled == 0 && try < 3; try++ {
		t.Logf("triggered capture %s had no query_key samples; manual retry %d", capture.ID, try+1)
		resp, err := http.Post(base+"/debug/profiles/capture?dur_ms=700", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue // capture in flight; try again
		}
		var c prof.Capture
		if err := json.Unmarshal(data, &c); err != nil {
			t.Fatalf("manual capture response: %v in %s", err, data)
		}
		labeled = countLabeled(c.ID)
	}
	if labeled == 0 {
		t.Fatal("no CPU samples labeled with the query's query_key in any capture")
	}
	t.Logf("capture %s: %d samples labeled query_key=%s", capture.ID, labeled, wantLabel)

}

// TestSLOEngineCountsFromRED: the engine's Source adapts the live RED
// counters — requests against the eval endpoint move the eval objective's
// counts.
func TestSLOEngineCountsFromRED(t *testing.T) {
	objectives := buildObjectives(Config{SLOLatency: time.Second, SLOLatencyTarget: 0.9, SLOErrorTarget: 0.99})
	src := sloSource(objectives)
	before := src()["eval"]

	_, base := startServer(t, Config{})
	code, data := post(t, http.DefaultClient, base+"/v1/eval", `{
	  "domain": "eq",
	  "state": {"relations": {"F": [["adam", "abel"], ["adam", "cain"]]}},
	  "formula": "exists y. F(x, y)"}`)
	if code != http.StatusOK {
		t.Fatalf("eval status %d: %s", code, data)
	}
	after := src()["eval"]
	if after.Requests <= before.Requests || after.LatCount <= before.LatCount {
		t.Fatalf("RED counts did not move: before=%+v after=%+v", before, after)
	}
	if after.LatGood < before.LatGood {
		t.Fatalf("good count went backwards: before=%+v after=%+v", before, after)
	}
}
