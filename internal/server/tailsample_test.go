package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestMarkFirstSeenDedup: the first sighting of a key reports true,
// every later sighting false.
func TestMarkFirstSeenDedup(t *testing.T) {
	s := New(Config{})
	if !s.markFirstSeen("k1") {
		t.Fatal("first sighting of k1 not reported")
	}
	if s.markFirstSeen("k1") {
		t.Fatal("second sighting of k1 reported as first")
	}
	if !s.markFirstSeen("k2") {
		t.Fatal("first sighting of k2 not reported")
	}
}

// TestMarkFirstSeenCap: the seen set stops growing at tailSeenCap, so a
// key-churning client cannot grow it without bound — and past the cap no
// new key is reported as first (no first-key captures), while keys
// already marked stay deduplicated.
func TestMarkFirstSeenCap(t *testing.T) {
	s := New(Config{})
	for i := 0; i < tailSeenCap; i++ {
		if !s.markFirstSeen(fmt.Sprintf("k%d", i)) {
			t.Fatalf("key %d under the cap not reported as first", i)
		}
	}
	if got := len(s.seen); got != tailSeenCap {
		t.Fatalf("seen set holds %d keys, want exactly %d", got, tailSeenCap)
	}
	// Past the cap: new keys are refused and do not grow the set.
	for i := 0; i < 64; i++ {
		if s.markFirstSeen(fmt.Sprintf("overflow%d", i)) {
			t.Fatalf("overflow key %d reported as first past the cap", i)
		}
	}
	if got := len(s.seen); got != tailSeenCap {
		t.Fatalf("seen set grew past the cap: %d keys", got)
	}
	// Keys marked before the cap are still recognized as seen.
	if s.markFirstSeen("k0") {
		t.Fatal("pre-cap key re-reported as first after the cap filled")
	}
}

// TestMarkFirstSeenConcurrent drives markFirstSeen from many goroutines
// with overlapping key sets (run under -race): each key must be reported
// first exactly once process-wide, and the set must respect the cap.
func TestMarkFirstSeenConcurrent(t *testing.T) {
	s := New(Config{})
	const (
		workers     = 8
		keysPerSlot = 4000 // workers share these, total stays under the cap
	)
	firsts := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerSlot; i++ {
				if s.markFirstSeen(fmt.Sprintf("shared%d", i)) {
					firsts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, n := range firsts {
		total += n
	}
	if total != keysPerSlot {
		t.Fatalf("%d first sightings across workers, want exactly %d (one per key)", total, keysPerSlot)
	}
	if got := len(s.seen); got != keysPerSlot {
		t.Fatalf("seen set holds %d keys, want %d", got, keysPerSlot)
	}
}
