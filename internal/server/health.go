package server

import (
	"net/http"

	"repro/apiv1"
)

// handleHealthz is liveness: the process is up and serving HTTP. It stays
// 200 through a drain — a draining process is alive, just not accepting
// new work — so orchestrators don't kill a pod that is finishing requests.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, apiv1.Health{Status: "ok"})
}

// handleReadyz is readiness: 200 while the server accepts new work, 503
// once a drain begins. The flip happens before the listener closes
// (StartDrain precedes http.Server.Shutdown), so a balancer polling
// /readyz stops routing while in-flight evaluations still complete.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, apiv1.Health{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, apiv1.Health{Status: "ready"})
}

// StartDrain flips /readyz to 503 without touching the listener: new
// requests are still served, but a balancer honoring readiness stops
// sending them. Shutdown calls this first; callers that want a grace
// window between the flip and the listener closing (finqd -drain-grace)
// can call it early themselves. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
