package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	finq "repro"
	"repro/apiv1"
)

func post(t *testing.T, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// startServer runs a real listener (not httptest) so shutdown and draining
// are exercised on the same code path finqd uses.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, "http://" + addr
}

// slowEvalBody is an /v1/eval request that enumerates an infinite answer
// (¬R(x) over Presburger) under a huge budget: it runs until the request
// deadline or the client's context stops it, which is exactly what these
// tests need a long-running request for.
const slowEvalBody = `{
  "domain": "presburger",
  "state": {"relations": {"R": [["5"]]}},
  "formula": "~R(x)",
  "mode": "enumerate",
  "budget": {"rows": 1048576, "probe": 1073741824}
}`

// TestEvalDeadlineMidEnumerationReturnsPartial is the acceptance check: a
// request whose deadline expires mid-enumeration must come back promptly
// with partial-result JSON, not an error and not after the budget.
func TestEvalDeadlineMidEnumerationReturnsPartial(t *testing.T) {
	cfg := Config{EvalTimeout: 150 * time.Millisecond}
	_, base := startServer(t, cfg)
	t0 := time.Now()
	code, data := post(t, http.DefaultClient, base+"/v1/eval", slowEvalBody)
	elapsed := time.Since(t0)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var res finq.ResultJSON
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad response JSON: %v in %s", err, data)
	}
	if !res.Partial || res.Stopped != "deadline" {
		t.Fatalf("want partial deadline result, got partial=%v stopped=%q (%s)", res.Partial, res.Stopped, data)
	}
	if res.Answer == nil || res.Answer.Complete {
		t.Fatalf("partial result must carry an incomplete answer: %s", data)
	}
	// Promptness: the evaluator checks between rows and probes, so the
	// response should arrive well before the 1M-row budget would.
	if elapsed > 5*time.Second {
		t.Fatalf("deadline response took %v", elapsed)
	}
}

// TestQueueOverflow429 fills every worker slot and the whole queue with
// slow evaluations, then checks the next request is shed with 429 while
// the slow ones are still running.
func TestQueueOverflow429(t *testing.T) {
	cfg := Config{Workers: 2, QueueDepth: 2, EvalTimeout: 30 * time.Second}
	srv, base := startServer(t, cfg)

	// Saturate workers + queue with requests the clients will cancel at the
	// end of the test; server-side evaluation stops when the clients go away.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers+cfg.QueueDepth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/eval", strings.NewReader(slowEvalBody))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	// Wait until all saturating requests are admitted (holding every worker
	// slot and queue position) before probing: a probe sent earlier would
	// take a slot itself and run a slow evaluation.
	deadline := time.Now().Add(10 * time.Second)
	for srv.queued.Load() < int64(cfg.Workers+cfg.QueueDepth) {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %d of %d admitted", srv.queued.Load(), cfg.Workers+cfg.QueueDepth)
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, data := post(t, http.DefaultClient, base+"/v1/eval", slowEvalBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: want 429, got %d: %s", code, data)
	}
	if !strings.Contains(string(data), "capacity") {
		t.Fatalf("429 body misses capacity message: %s", data)
	}
	cancel()
	wg.Wait()
}

// TestGracefulShutdownDrains starts a slow (deadline-bounded) eval, begins
// shutdown while it is in flight, and checks that the request still
// completes with its partial result.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg := Config{EvalTimeout: 300 * time.Millisecond}
	srv, base := startServer(t, cfg)

	type outcome struct {
		code int
		body []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := http.DefaultClient.Post(base+"/v1/eval", "application/json", strings.NewReader(slowEvalBody))
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		ch <- outcome{code: resp.StatusCode, body: data, err: err}
	}()

	time.Sleep(50 * time.Millisecond) // let the request reach the evaluator
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", out.err)
	}
	if out.code != http.StatusOK || !strings.Contains(string(out.body), `"stopped":"deadline"`) {
		t.Fatalf("in-flight request: status %d body %s", out.code, out.body)
	}
	// After drain, new connections must be refused.
	if _, err := http.DefaultClient.Post(base+"/v1/eval", "application/json", strings.NewReader(`{}`)); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// TestNoGoroutineLeak mirrors the parallel-evaluator regression test at the
// service layer: after a mix of completed, deadline-stopped, and
// client-cancelled requests (serial and parallel evaluation), the goroutine
// count settles back to its baseline.
func TestNoGoroutineLeak(t *testing.T) {
	cfg := Config{Workers: 4, EvalTimeout: 100 * time.Millisecond}
	srv, base := startServer(t, cfg)
	before := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		// Deadline-stopped enumeration.
		code, data := post(t, http.DefaultClient, base+"/v1/eval", slowEvalBody)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, data)
		}
		// Client cancellation mid-request.
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/eval", strings.NewReader(slowEvalBody))
		if err != nil {
			t.Fatal(err)
		}
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		// A quick parallel evaluation that completes normally.
		code, data = post(t, http.DefaultClient, base+"/v1/eval", `{
		  "domain": "eq",
		  "state": {"relations": {"F": [["adam", "abel"], ["adam", "cain"]]}},
		  "formula": "exists y. F(x, y)", "workers": 4}`)
		if code != http.StatusOK {
			t.Fatalf("parallel eval status %d: %s", code, data)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across server requests", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanicRecovery: a handler panic becomes a JSON 500, not a dropped
// connection, and is counted.
func TestPanicRecovery(t *testing.T) {
	srv := New(Config{})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/boom", srv.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(data), "kaboom") {
		t.Fatalf("status %d body %s", resp.StatusCode, data)
	}
	if mPanics.Value() == 0 {
		t.Fatal("panic not counted")
	}
}

// TestEndpointsRoundTrip exercises decide, qe, safety, domains, and error
// shapes through the HTTP layer.
func TestEndpointsRoundTrip(t *testing.T) {
	_, base := startServer(t, Config{})

	code, data := post(t, http.DefaultClient, base+"/v1/decide",
		`{"domain": "presburger", "sentence": "forall x. exists y. lt(x, y)"}`)
	if code != http.StatusOK || !strings.Contains(string(data), `"truth":true`) {
		t.Fatalf("decide: %d %s", code, data)
	}

	code, data = post(t, http.DefaultClient, base+"/v1/qe",
		`{"domain": "eq", "formula": "exists y. ~(y = x)"}`)
	if code != http.StatusOK || !strings.Contains(string(data), `"formula"`) {
		t.Fatalf("qe: %d %s", code, data)
	}

	code, data = post(t, http.DefaultClient, base+"/v1/safety",
		`{"domain": "eq", "state": {"relations": {"F": [["adam", "abel"]]}}, "formula": "~F(x, y)"}`)
	if code != http.StatusOK || !strings.Contains(string(data), `"verdict":"fails"`) {
		t.Fatalf("safety: %d %s", code, data)
	}

	resp, err := http.Get(base + "/v1/domains")
	if err != nil {
		t.Fatal(err)
	}
	domData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doms []apiv1.Domain
	if err := json.Unmarshal(domData, &doms); err != nil || len(doms) != len(finq.Domains()) {
		t.Fatalf("domains: %v %s", err, domData)
	}

	// Error shapes: unknown domain and unknown field are 400s with a JSON
	// error; GET on a POST endpoint is 405.
	code, data = post(t, http.DefaultClient, base+"/v1/decide", `{"domain": "nope", "sentence": "x = x"}`)
	if code != http.StatusBadRequest || !strings.Contains(string(data), "unknown domain") {
		t.Fatalf("unknown domain: %d %s", code, data)
	}
	code, data = post(t, http.DefaultClient, base+"/v1/decide", `{"domain": "eq", "sentnce": "x = x"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", code, data)
	}
	if resp, err := http.Get(base + "/v1/eval"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/eval: %d", resp.StatusCode)
		}
	}

	// Oversized body → 413.
	big := fmt.Sprintf(`{"domain": "eq", "sentence": %q}`, strings.Repeat("x", 2<<20))
	code, _ = post(t, http.DefaultClient, base+"/v1/decide", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", code)
	}

	// Metrics surface the service families and the shared decision cache.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"server_requests", "server_latency_us", "deccache_hits"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics misses %s", want)
		}
	}
}
