package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	finq "repro"
	"repro/apiv1"
)

// Streaming row delivery for POST /v1/eval in enumerate mode: instead of
// buffering the whole answer until the budget ends, rows are written and
// flushed as the §1.1 algorithm produces them — a header line/frame with
// the answer columns, one line/frame per row, and a trailer carrying the
// result metadata (rows, complete/partial, stop reason, late errors).
//
// Negotiation: ?stream=1 selects NDJSON; an Accept header naming
// application/x-ndjson or application/x-finq-frames selects that
// encoding. Everything else gets the buffered JSON response.
//
// Client disconnect is a first-class stop reason. The eval context is
// rebuilt from the request context with context.WithoutCancel (keeping
// the request ID and deadline but dropping the transport's own cancel),
// and a watcher cancels it with cause finq.ErrClientGone the moment the
// client goes away — so the evaluation stops between rows, the partial
// result is attributed "client-gone" (not a generic "canceled") in spans,
// the access log, and per-query stats, and the worker slot frees
// immediately instead of at the deadline.

// streamEncoding reports the negotiated streaming content type for the
// request, or "" for the default buffered JSON response.
func streamEncoding(r *http.Request) string {
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, apiv1.ContentTypeFrames):
		return apiv1.ContentTypeFrames
	case strings.Contains(accept, apiv1.ContentTypeNDJSON):
		return apiv1.ContentTypeNDJSON
	case r.URL.Query().Get("stream") == "1":
		return apiv1.ContentTypeNDJSON
	}
	return ""
}

// rowStream is one streaming encoding: NDJSON lines or binary frames.
// Writers flush after the header and after every row, so the client sees
// each row as it is found; the trailer rides the handler's final flush.
type rowStream interface {
	header(vars []string) error
	row(cells []string) error
	trailer(t apiv1.StreamTrailer) error
}

// streamEval takes over a negotiated streaming response. Validation
// errors surface before the status line is written (a normal error
// response); once streaming starts, failures ride the trailer.
func (s *Server) streamEval(ctx context.Context, env *handlerEnv, enc string,
	d finq.DomainInfo, lreq finq.Request) (any, error) {

	if lreq.Mode != finq.ModeEnumerate {
		return nil, errf(http.StatusBadRequest,
			"streaming requires mode %q (got %q); active-domain answers arrive whole",
			finq.ModeEnumerate, lreq.Mode)
	}

	// The eval context: the request's values (ID) and deadline without the
	// transport's cancellation, plus a cancel cause the watcher below fires
	// on disconnect — so a client-gone stop is attributed deterministically
	// rather than racing the transport's own context teardown.
	base := context.WithoutCancel(ctx)
	if dl, ok := ctx.Deadline(); ok {
		var cancelDL context.CancelFunc
		base, cancelDL = context.WithDeadline(base, dl)
		defer cancelDL()
	}
	evalCtx, cancel := context.WithCancelCause(base)
	defer cancel(nil)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-env.r.Context().Done():
			cancel(finq.ErrClientGone)
		case <-done:
		}
	}()

	rc := http.NewResponseController(env.w)
	env.w.Header().Set("Content-Type", enc)
	env.w.WriteHeader(http.StatusOK)
	var out rowStream
	switch enc {
	case apiv1.ContentTypeFrames:
		out = &frameStream{w: env.w, rc: rc}
	default:
		out = &ndjsonStream{w: env.w, rc: rc}
	}

	vars := lreq.Formula.FreeVars()
	if err := out.header(vars); err != nil {
		// The response is already broken; there is nothing left to write.
		return streamed{}, nil
	}

	var rows int64
	lreq.OnRow = func(vars []string, row finq.Tuple) error {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = d.Domain.ConstName(v)
		}
		if err := out.row(cells); err != nil {
			// The write failed: the client is gone. Returning ErrClientGone
			// stops the enumeration and stamps the partial result.
			return finq.ErrClientGone
		}
		rows++
		return nil
	}

	res, err := finq.Eval(evalCtx, lreq)
	t := apiv1.StreamTrailer{Rows: rows}
	if st := stateFrom(ctx); st != nil {
		// The trailer quotes the trace ID (the headers are long gone by
		// now), so a streamed partial answer still links to its trace.
		t.TraceID = st.traceID
	}
	switch {
	case err != nil:
		// The status line was 200 before evaluation began; the failure
		// rides the trailer with its wire code.
		t.Error = &apiv1.Error{Code: apiv1.CodeEvalFailed, Message: err.Error()}
		noteStopped(ctx, "error")
	default:
		t.Complete = res.Answer != nil && res.Answer.Complete
		t.Partial = res.Partial
		t.Stopped = res.Stopped
		if len(vars) == 0 && res.Answer != nil {
			truth := res.Answer.Rows.Len() > 0
			t.Truth = &truth
		}
		noteRows(ctx, rows)
		noteStopped(ctx, res.Stopped)
	}
	out.trailer(t)
	return streamed{}, nil
}

// ndjsonStream writes the stream as one JSON value per line.
type ndjsonStream struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (s *ndjsonStream) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return s.rc.Flush()
}

func (s *ndjsonStream) header(vars []string) error {
	if vars == nil {
		vars = []string{}
	}
	return s.writeLine(apiv1.StreamHeader{Vars: vars})
}

func (s *ndjsonStream) row(cells []string) error {
	return s.writeLine(apiv1.StreamRow{Row: cells})
}

func (s *ndjsonStream) trailer(t apiv1.StreamTrailer) error {
	return s.writeLine(t)
}

// frameStream writes the stream in the compact binary frame encoding
// (finq.AppendFrame and friends): header and trailer frames carry JSON
// payloads, row frames carry length-prefixed cells with no JSON at all.
type frameStream struct {
	w   http.ResponseWriter
	rc  *http.ResponseController
	buf []byte
}

func (s *frameStream) writeFrames() error {
	_, err := s.w.Write(s.buf)
	s.buf = s.buf[:0]
	if err != nil {
		return err
	}
	return s.rc.Flush()
}

func (s *frameStream) header(vars []string) error {
	if vars == nil {
		vars = []string{}
	}
	payload, err := json.Marshal(apiv1.StreamHeader{Vars: vars})
	if err != nil {
		return err
	}
	s.buf = finq.AppendFrame(s.buf, finq.FrameHeader, payload)
	return s.writeFrames()
}

func (s *frameStream) row(cells []string) error {
	s.buf = finq.AppendRowFrame(s.buf, cells)
	return s.writeFrames()
}

func (s *frameStream) trailer(t apiv1.StreamTrailer) error {
	payload, err := json.Marshal(t)
	if err != nil {
		return err
	}
	s.buf = finq.AppendFrame(s.buf, finq.FrameTrailer, payload)
	return s.writeFrames()
}
