package server

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/apiv1"
	"repro/client"
)

// eqStateJSON is a small genealogy state over the eq domain, shared by
// the batch and stream tests.
const eqStateJSON = `{"relations": {"F": [["adam", "abel"], ["adam", "cain"]]}}`

// presStateJSON is a small Presburger state whose constants are small
// numerals, so §1.1 enumeration finds them within a few probes.
const presStateJSON = `{"relations": {"R": [["1"], ["3"]]}}`

// TestBatchSharedState: one batch runs several queries — active,
// enumerate, and a boolean sentence — against one shared state, and each
// item's result matches what a single /v1/eval would have produced.
func TestBatchSharedState(t *testing.T) {
	_, base := startServer(t, Config{})
	c := client.New(base, nil)

	resp, err := c.EvalBatch(context.Background(), apiv1.BatchRequest{
		Domain: "presburger",
		State:  json.RawMessage(presStateJSON),
		Items: []apiv1.BatchItem{
			{Formula: "R(x)"},
			{Formula: "R(x)", Mode: "enumerate", Budget: &apiv1.Budget{Rows: 16, Probe: 1 << 20}},
			{Formula: "exists x. R(x)"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stopped != "" {
		t.Fatalf("batch stopped early: %q", resp.Stopped)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("want 3 item results, got %d", len(resp.Items))
	}
	for i, it := range resp.Items {
		if it.Error != nil {
			t.Fatalf("item %d failed: %v", i, it.Error)
		}
		if it.Result == nil || it.Result.Answer == nil {
			t.Fatalf("item %d misses a result", i)
		}
	}
	if rows := resp.Items[0].Result.Answer.Rows; len(rows) != 2 {
		t.Fatalf("item 0 rows %v", rows)
	}
	if ans := resp.Items[1].Result.Answer; !ans.Complete || len(ans.Rows) != 2 {
		t.Fatalf("item 1 should enumerate both rows completely: %+v", ans)
	}
	if tr := resp.Items[2].Result.Answer.Truth; tr == nil || !*tr {
		t.Fatalf("item 2 should be true: %+v", resp.Items[2].Result.Answer)
	}
}

// TestBatchItemError: a failing item (bad formula) is reported on that
// item with a closed-set code; the items around it still run.
func TestBatchItemError(t *testing.T) {
	_, base := startServer(t, Config{})
	c := client.New(base, nil)

	resp, err := c.EvalBatch(context.Background(), apiv1.BatchRequest{
		Domain: "eq",
		State:  json.RawMessage(eqStateJSON),
		Items: []apiv1.BatchItem{
			{Formula: "exists y. F(x, y)"},
			{Formula: "((("},
			{Formula: "exists y. F(x, y)"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Error != nil || resp.Items[2].Error != nil {
		t.Fatalf("healthy items failed: %+v", resp.Items)
	}
	bad := resp.Items[1]
	if bad.Result != nil || bad.Error == nil {
		t.Fatalf("item 1 should carry an error, got %+v", bad)
	}
	if bad.Error.Code != apiv1.CodeBadRequest {
		t.Fatalf("bad-formula item code %q, want %q", bad.Error.Code, apiv1.CodeBadRequest)
	}
	if resp.Stopped != "" {
		t.Fatalf("an item error must not stop the batch: %q", resp.Stopped)
	}
}

// TestBatchDeadline: when the per-batch deadline expires mid-batch, the
// item in flight comes back partial (stopped "deadline"), the items after
// it carry a "deadline" error without running, and the response says the
// batch stopped on the deadline.
func TestBatchDeadline(t *testing.T) {
	_, base := startServer(t, Config{EvalTimeout: 300 * time.Millisecond})
	c := client.New(base, nil)

	slow := apiv1.BatchItem{
		Formula: "~R(x)",
		Mode:    "enumerate",
		Budget:  &apiv1.Budget{Rows: 1 << 20, Probe: 1 << 30},
	}
	resp, err := c.EvalBatch(context.Background(), apiv1.BatchRequest{
		Domain: "presburger",
		State:  json.RawMessage(`{"relations": {"R": [["5"]]}}`),
		Items:  []apiv1.BatchItem{slow, {Formula: "R(x)", Mode: "enumerate"}, {Formula: "R(x)", Mode: "enumerate"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stopped != "deadline" {
		t.Fatalf("batch stopped %q, want deadline: %+v", resp.Stopped, resp)
	}
	first := resp.Items[0]
	if first.Result == nil || !first.Result.Partial || first.Result.Stopped != "deadline" {
		t.Fatalf("in-flight item should be a partial deadline result: %+v", first)
	}
	for i, it := range resp.Items[1:] {
		if it.Error == nil || it.Error.Code != apiv1.CodeDeadline {
			t.Fatalf("post-deadline item %d should carry a deadline error: %+v", i+1, it)
		}
	}
}

// TestBatchLimits: an empty batch and an over-limit batch are 400s with
// the bad_request code.
func TestBatchLimits(t *testing.T) {
	_, base := startServer(t, Config{MaxBatchItems: 4})
	c := client.New(base, nil)

	_, err := c.EvalBatch(context.Background(), apiv1.BatchRequest{Domain: "eq"})
	assertAPIError(t, err, 400, apiv1.CodeBadRequest)

	items := make([]apiv1.BatchItem, 5)
	for i := range items {
		items[i] = apiv1.BatchItem{Formula: "x = x"}
	}
	_, err = c.EvalBatch(context.Background(), apiv1.BatchRequest{Domain: "eq", Items: items})
	assertAPIError(t, err, 400, apiv1.CodeBadRequest)
}

// assertAPIError checks a client error is an *client.APIError with the
// given status and closed-set code.
func assertAPIError(t *testing.T, err error, status int, code string) {
	t.Helper()
	ae, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("want *client.APIError, got %T: %v", err, err)
	}
	if ae.Status != status || ae.Code != code {
		t.Fatalf("want %d %s, got %d %s (%s)", status, code, ae.Status, ae.Code, ae.Message)
	}
	if !apiv1.ValidCode(ae.Code) {
		t.Fatalf("code %q outside the closed set", ae.Code)
	}
	if ae.RequestID == "" {
		t.Fatalf("error misses the request ID: %+v", ae)
	}
}
