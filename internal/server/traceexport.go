package server

import (
	"net/http"

	"repro/internal/obs/trace"
)

// handleTraceExport serves GET /debug/trace/export: the server's flight-
// recorder ring (the complete retained record, slow-op log included) in a
// choice of formats selected by ?format=:
//
//	otlp    (default) OTLP/JSON resource spans — identity-carrying spans
//	        under this service's resource, ingestible by any OTLP backend
//	jsonl   the flight-recorder JSONL dump with a metadata header line
//	        (process name + epoch), the input `finq trace stitch` merges
//	chrome  the Chrome trace-event array, loadable in Perfetto directly
//
// The export is a read: it does not arm, disarm, or reset the recorder,
// so it can be polled while a run is still recording.
func (s *Server) handleTraceExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	events := s.rec.Dump()
	// A never-armed recorder has a zero epoch; exporting UnixNano() of the
	// zero time would stamp a nonsense negative anchor, so leave it 0
	// (stitch treats 0 as "not anchored").
	var epochNanos int64
	if epoch := s.rec.Epoch(); !epoch.IsZero() {
		epochNanos = epoch.UnixNano()
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "otlp":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteOTLP(w, s.cfg.ServiceName, s.rec.Epoch(), events)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		trace.WriteJSONLMeta(w, trace.Meta{
			Process:       s.cfg.ServiceName,
			EpochUnixNano: epochNanos,
		}, events)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, events)
	default:
		writeError(w, http.StatusBadRequest,
			"unknown format %q (want otlp, jsonl, or chrome)", format)
	}
}
