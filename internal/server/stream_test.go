package server

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/apiv1"
	"repro/client"
	"repro/internal/obs/qstats"
)

// slowStreamReq enumerates an infinite answer (¬R(x) over Presburger)
// under a huge budget — the streaming analogue of slowEvalBody.
func slowStreamReq() apiv1.EvalRequest {
	return apiv1.EvalRequest{
		Domain:  "presburger",
		Formula: "~R(x)",
		State:   json.RawMessage(`{"relations": {"R": [["5"]]}}`),
		Mode:    "enumerate",
		Budget:  &apiv1.Budget{Rows: 1 << 20, Probe: 1 << 30},
	}
}

// TestStreamNDJSONComplete: a finite enumeration streams every row and
// ends with a complete trailer, in both negotiation forms (?stream=1 is
// exercised through the client's Accept header; the encodings share the
// handler).
func TestStreamNDJSONComplete(t *testing.T) {
	_, base := startServer(t, Config{})
	c := client.New(base, nil)

	for _, enc := range []string{apiv1.ContentTypeNDJSON, apiv1.ContentTypeFrames} {
		var rows [][]string
		res, err := c.EvalStream(context.Background(), apiv1.EvalRequest{
			Domain:  "presburger",
			Formula: "R(x)",
			State:   json.RawMessage(presStateJSON),
			Mode:    "enumerate",
			Budget:  &apiv1.Budget{Rows: 16, Probe: 1 << 20},
		}, enc, func(row []string) error {
			rows = append(rows, append([]string{}, row...))
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		if !reflect.DeepEqual(res.Vars, []string{"x"}) {
			t.Fatalf("%s: vars %v", enc, res.Vars)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: streamed rows %v", enc, rows)
		}
		if !res.Trailer.Complete || res.Trailer.Partial || res.Trailer.Rows != 2 {
			t.Fatalf("%s: trailer %+v", enc, res.Trailer)
		}
	}
}

// TestStreamBooleanTruth: a sentence streams no rows; the verdict rides
// the trailer.
func TestStreamBooleanTruth(t *testing.T) {
	_, base := startServer(t, Config{})
	c := client.New(base, nil)

	res, err := c.EvalStream(context.Background(), apiv1.EvalRequest{
		Domain:  "presburger",
		Formula: "exists x. R(x)",
		State:   json.RawMessage(presStateJSON),
		Mode:    "enumerate",
	}, "", func(row []string) error {
		t.Fatalf("boolean stream delivered a row: %v", row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trailer.Truth == nil || !*res.Trailer.Truth {
		t.Fatalf("trailer %+v", res.Trailer)
	}
}

// TestStreamRequiresEnumerate: stream negotiation on active mode is a
// 400 bad_request before any streaming starts.
func TestStreamRequiresEnumerate(t *testing.T) {
	_, base := startServer(t, Config{})
	c := client.New(base, nil)

	_, err := c.EvalStream(context.Background(), apiv1.EvalRequest{
		Domain:  "eq",
		Formula: "exists y. F(x, y)",
		State:   json.RawMessage(eqStateJSON),
	}, "", nil)
	assertAPIError(t, err, 400, apiv1.CodeBadRequest)
}

// TestStreamFirstRowBeforeDeadline is the streaming acceptance check: on
// an enumeration that would run to its deadline, the first row reaches
// the client while the evaluation is still running — not after the budget
// or deadline ends.
func TestStreamFirstRowBeforeDeadline(t *testing.T) {
	_, base := startServer(t, Config{EvalTimeout: 2 * time.Second})
	c := client.New(base, nil)

	t0 := time.Now()
	var firstRow time.Duration
	res, err := c.EvalStream(context.Background(), slowStreamReq(), "", func(row []string) error {
		if firstRow == 0 {
			firstRow = time.Since(t0)
		}
		return nil
	})
	total := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trailer.Stopped != "deadline" || !res.Trailer.Partial {
		t.Fatalf("trailer %+v", res.Trailer)
	}
	if firstRow == 0 {
		t.Fatal("no row arrived before the deadline")
	}
	if firstRow > total/2 {
		t.Fatalf("first row after %v of %v; rows are not streaming", firstRow, total)
	}
}

// TestStreamClientDisconnect is the disconnect acceptance check (run
// under -race in CI): a client that goes away mid-stream stops the
// evaluation goroutine promptly, the rows already found were flushed, and
// the stop reason "client-gone" lands in per-query stats and the access
// log.
func TestStreamClientDisconnect(t *testing.T) {
	qstats.Enable()
	cap, logger := captureLogger(t)
	srv, base := startServer(t, Config{EvalTimeout: 30 * time.Second, Logger: logger})
	c := client.New(base, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	_, err := c.EvalStream(ctx, slowStreamReq(), "", func(row []string) error {
		rows++
		if rows == 3 {
			cancel() // the client vanishes mid-stream
		}
		return nil
	})
	if err == nil {
		t.Fatal("abandoned stream should error on the client side")
	}
	if rows < 3 {
		t.Fatalf("rows were not flushed before the disconnect: %d", rows)
	}

	// The evaluation goroutine must stop promptly — long before the 30s
	// deadline — freeing the worker slot.
	waitFor(t, "worker slot release", func() bool {
		return srv.queued.Load() == 0
	})
	// The stop reason is recorded in per-query stats...
	waitFor(t, "client-gone in qstats", func() bool {
		entries, err := qstats.Default().TopK(qstats.ByCount, 0)
		if err != nil {
			return false
		}
		for _, e := range entries {
			if e.Stopped["client-gone"] > 0 {
				return true
			}
		}
		return false
	})
	// ...and in the access log line of the request.
	waitFor(t, "client-gone access log", func() bool {
		for _, rec := range cap.lines(t) {
			if rec["endpoint"] == "eval" && rec["stopped"] == "client-gone" {
				return true
			}
		}
		return false
	})
}
