package server

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs/trace"
)

// tailPerEndpoint bounds each endpoint's capture reservoir; the oldest
// capture is evicted when a new one arrives at capacity. Per-endpoint
// reservoirs keep a chatty endpoint (eval) from evicting the rare capture
// of a quiet one (safety).
const tailPerEndpoint = 16

// tailSeenCap bounds the first-seen key set. Past it no new key is marked
// (so no new first-key captures happen), which keeps a key-churning client
// from growing the set without bound.
const tailSeenCap = 16384

// Tail-capture reasons, in priority order: a request that is both slow and
// errored records as slow.
const (
	// ReasonSlow marks a request at or above Config.SlowRequest.
	ReasonSlow = "slow"
	// ReasonError marks a request answered with status >= 400 (sheds
	// excluded — a 429 carries no evaluation worth tracing, and overload
	// would flood the reservoir).
	ReasonError = "error"
	// ReasonFirstKey marks the first request ever seen for a query's
	// CanonicalKey, so every distinct query has at least one full trace on
	// hand — the trace a qstats entry links back to.
	ReasonFirstKey = "first-key"
)

// TailCapture is one sampled request's record: the access-log facts, why
// it was retained, and the request's span subtree snapshotted from the
// flight recorder (empty when the recorder was not armed at capture
// time). GET /debug/slow lists the captures; ?id=<request id> retrieves
// one in full.
type TailCapture struct {
	RequestID  string      `json:"request_id"`
	TraceID    string      `json:"trace_id,omitempty"`
	Endpoint   string      `json:"endpoint"`
	Status     int         `json:"status"`
	DurationUS int64       `json:"duration_us"`
	Reason     string      `json:"reason"`
	QueryKey   string      `json:"query_key,omitempty"`
	Rows       int64       `json:"rows,omitempty"`
	Stopped    string      `json:"stopped,omitempty"`
	Events     []SlowEvent `json:"events,omitempty"`
}

// TailListing is one row of the GET /debug/slow index: enough to decide
// which capture to fetch, without the event payload.
type TailListing struct {
	RequestID  string `json:"request_id"`
	Endpoint   string `json:"endpoint"`
	Status     int    `json:"status"`
	DurationUS int64  `json:"duration_us"`
	Reason     string `json:"reason"`
}

// SlowEvent is one flight-recorder event of a captured subtree. Trace,
// Span, and Parent are the W3C identities (present when the event was
// recorded under a trace position), so a capture's hierarchy matches the
// exported trace's.
type SlowEvent struct {
	Name   string         `json:"name"`
	Phase  string         `json:"phase"`
	TSUS   int64          `json:"ts_us"`
	DurUS  int64          `json:"dur_us,omitempty"`
	TID    int64          `json:"tid"`
	Trace  string         `json:"trace,omitempty"`
	Span   string         `json:"span,omitempty"`
	Parent string         `json:"parent,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
}

// tailSampler is the server's bounded tail-sample store: per-endpoint
// reservoirs of retained captures plus the set of query keys already seen
// (for first-key sampling).
type tailSampler struct {
	tailMu sync.Mutex
	tails  map[string][]TailCapture // per endpoint, newest last
	seen   map[string]bool
}

// markFirstSeen records the query key as seen and reports whether this was
// its first sighting (false once the seen set is full).
func (s *Server) markFirstSeen(key string) bool {
	s.tailMu.Lock()
	defer s.tailMu.Unlock()
	if s.seen == nil {
		s.seen = map[string]bool{}
	}
	if s.seen[key] || len(s.seen) >= tailSeenCap {
		return false
	}
	s.seen[key] = true
	return true
}

// captureTail snapshots a sampled request: its span subtree is pulled from
// the flight recorder by request ID and the capture is retained in its
// endpoint's reservoir. Slow requests additionally log a warning so they
// are visible in the log stream under the same ID as their access line;
// error and first-key captures log at debug (the access line already
// reports errors at warn or above).
func (s *Server) captureTail(ctx context.Context, st *reqState, status int, dur time.Duration, reason string) {
	c := TailCapture{
		RequestID:  st.id,
		TraceID:    st.traceID,
		Endpoint:   st.endpoint,
		Status:     status,
		DurationUS: dur.Microseconds(),
		Reason:     reason,
		QueryKey:   st.queryKey,
		Rows:       st.rows,
		Stopped:    st.stopped,
		Events:     s.subtreeEvents(st.id, st.traceID),
	}
	s.tailMu.Lock()
	if s.tails == nil {
		s.tails = map[string][]TailCapture{}
	}
	q := s.tails[st.endpoint]
	if len(q) >= tailPerEndpoint {
		q = append(q[:0], q[1:]...)
	}
	s.tails[st.endpoint] = append(q, c)
	s.tailMu.Unlock()

	level := slog.LevelDebug
	msg := "tail sample"
	if reason == ReasonSlow {
		level, msg = slog.LevelWarn, "slow request"
	}
	s.logger().LogAttrs(ctx, level, msg,
		slog.String("id", st.id),
		slog.String("trace_id", st.traceID),
		slog.String("endpoint", st.endpoint),
		slog.String("reason", reason),
		slog.Int64("dur_us", c.DurationUS),
		slog.Int("trace_events", len(c.Events)),
	)
}

// TailCaptures returns every retained capture, ordered by endpoint name
// and, within an endpoint, oldest first.
func (s *Server) TailCaptures() []TailCapture {
	s.tailMu.Lock()
	defer s.tailMu.Unlock()
	endpoints := make([]string, 0, len(s.tails))
	for e := range s.tails {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	var out []TailCapture
	for _, e := range endpoints {
		out = append(out, s.tails[e]...)
	}
	return out
}

// handleSlow serves GET /debug/slow: with no parameters, the capture
// index (request IDs with endpoint, status, duration, and retention
// reason); with ?id=<request id>, the full capture including its span
// subtree (404 when the ID has no capture).
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	caps := s.TailCaptures()
	id := r.URL.Query().Get("id")
	if id == "" {
		listing := make([]TailListing, 0, len(caps))
		for _, c := range caps {
			listing = append(listing, TailListing{
				RequestID:  c.RequestID,
				Endpoint:   c.Endpoint,
				Status:     c.Status,
				DurationUS: c.DurationUS,
				Reason:     c.Reason,
			})
		}
		writeJSON(w, http.StatusOK, listing)
		return
	}
	for i := len(caps) - 1; i >= 0; i-- {
		if caps[i].RequestID == id {
			writeJSON(w, http.StatusOK, caps[i])
			return
		}
	}
	writeError(w, http.StatusNotFound, "no tail-sample capture for id %q", id)
}

// subtreeEvents extracts one request's span subtree from the server's
// flight recorder. Events carrying the request's trace ID, or a "req"
// argument matching the request ID, anchor the selection; events on the
// same goroutines within the anchored time windows are the children
// (per-row spans, QE stages) that don't carry either identity themselves.
// Returns nil when the recorder holds nothing for the request (disarmed,
// or the ring wrapped past it).
func (s *Server) subtreeEvents(id, traceID string) []SlowEvent {
	if !s.rec.Armed() {
		return nil
	}
	events := s.rec.Events()
	// Pass 1: anchored events establish the per-goroutine time windows.
	type window struct{ lo, hi int64 }
	windows := map[int64]*window{}
	for _, e := range events {
		if !hasReqArg(e, id) && (traceID == "" || e.Trace != traceID) {
			continue
		}
		hi := e.TS
		if e.Dur > 0 && e.Phase == trace.PhaseComplete {
			hi = e.TS + e.Dur
		}
		lo := e.TS
		if e.Phase == trace.PhaseEnd && e.Dur > 0 {
			lo = e.TS - e.Dur
		}
		w, ok := windows[e.TID]
		if !ok {
			windows[e.TID] = &window{lo: lo, hi: hi}
			continue
		}
		if lo < w.lo {
			w.lo = lo
		}
		if hi > w.hi {
			w.hi = hi
		}
	}
	if len(windows) == 0 {
		return nil
	}
	// Pass 2: collect every event inside an anchored window.
	var out []SlowEvent
	for _, e := range events {
		w, ok := windows[e.TID]
		if !ok || e.TS < w.lo || e.TS > w.hi {
			continue
		}
		se := SlowEvent{
			Name:   e.Name,
			Phase:  string(rune(e.Phase)),
			TSUS:   e.TS,
			DurUS:  e.Dur,
			TID:    e.TID,
			Trace:  e.Trace,
			Span:   e.Span,
			Parent: e.Parent,
		}
		if len(e.Args) > 0 {
			se.Args = make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				se.Args[a.Key] = a.Value()
			}
		}
		out = append(out, se)
	}
	return out
}

// hasReqArg reports whether the event carries a "req" argument equal to id.
func hasReqArg(e trace.Event, id string) bool {
	for _, a := range e.Args {
		if a.Key == "req" && a.IsStr && a.Str == id {
			return true
		}
	}
	return false
}
