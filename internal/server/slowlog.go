package server

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs/trace"
)

// slowCap bounds the in-memory slow-request log; the oldest capture is
// evicted when a new one arrives at capacity.
const slowCap = 32

// SlowCapture is one slow request's record: the access-log facts plus the
// request's span subtree snapshotted from the flight recorder (empty when
// the recorder was not armed at capture time). GET /debug/slow serves the
// captures; GET /debug/slow?id=<request id> retrieves one.
type SlowCapture struct {
	RequestID  string      `json:"request_id"`
	Endpoint   string      `json:"endpoint"`
	Status     int         `json:"status"`
	DurationUS int64       `json:"duration_us"`
	Rows       int64       `json:"rows,omitempty"`
	Stopped    string      `json:"stopped,omitempty"`
	Events     []SlowEvent `json:"events,omitempty"`
}

// SlowEvent is one flight-recorder event of the captured subtree.
type SlowEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"phase"`
	TSUS  int64          `json:"ts_us"`
	DurUS int64          `json:"dur_us,omitempty"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// captureSlow snapshots a slow request: its span subtree is pulled from
// the flight recorder by request ID, the capture is retained for
// /debug/slow, and a warning is logged so the slow request is visible in
// the log stream under the same ID as its access line.
func (s *Server) captureSlow(ctx context.Context, st *reqState, status int, dur time.Duration) {
	c := SlowCapture{
		RequestID:  st.id,
		Endpoint:   st.endpoint,
		Status:     status,
		DurationUS: dur.Microseconds(),
		Rows:       st.rows,
		Stopped:    st.stopped,
		Events:     subtreeEvents(st.id),
	}
	s.slowMu.Lock()
	if len(s.slow) >= slowCap {
		s.slow = append(s.slow[:0], s.slow[1:]...)
	}
	s.slow = append(s.slow, c)
	s.slowMu.Unlock()
	s.logger().LogAttrs(ctx, slog.LevelWarn, "slow request",
		slog.String("id", st.id),
		slog.String("endpoint", st.endpoint),
		slog.Int64("dur_us", c.DurationUS),
		slog.Int("trace_events", len(c.Events)),
	)
}

// subtreeEvents extracts one request's span subtree from the flight
// recorder. Events whose "req" argument matches the ID anchor the
// selection; events on the same goroutines within the anchored time
// windows are the children (per-row spans, QE stages) that don't carry
// the ID themselves. Returns nil when the recorder holds nothing for the
// ID (disarmed, or the ring wrapped past the request).
func subtreeEvents(id string) []SlowEvent {
	if !trace.Armed() {
		return nil
	}
	events := trace.Events()
	// Pass 1: anchored events establish the per-goroutine time windows.
	type window struct{ lo, hi int64 }
	windows := map[int64]*window{}
	for _, e := range events {
		if !hasReqArg(e, id) {
			continue
		}
		hi := e.TS
		if e.Dur > 0 && e.Phase == trace.PhaseComplete {
			hi = e.TS + e.Dur
		}
		lo := e.TS
		if e.Phase == trace.PhaseEnd && e.Dur > 0 {
			lo = e.TS - e.Dur
		}
		w, ok := windows[e.TID]
		if !ok {
			windows[e.TID] = &window{lo: lo, hi: hi}
			continue
		}
		if lo < w.lo {
			w.lo = lo
		}
		if hi > w.hi {
			w.hi = hi
		}
	}
	if len(windows) == 0 {
		return nil
	}
	// Pass 2: collect every event inside an anchored window.
	var out []SlowEvent
	for _, e := range events {
		w, ok := windows[e.TID]
		if !ok || e.TS < w.lo || e.TS > w.hi {
			continue
		}
		se := SlowEvent{
			Name:  e.Name,
			Phase: string(rune(e.Phase)),
			TSUS:  e.TS,
			DurUS: e.Dur,
			TID:   e.TID,
		}
		if len(e.Args) > 0 {
			se.Args = make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				se.Args[a.Key] = a.Value()
			}
		}
		out = append(out, se)
	}
	return out
}

// hasReqArg reports whether the event carries a "req" argument equal to id.
func hasReqArg(e trace.Event, id string) bool {
	for _, a := range e.Args {
		if a.Key == "req" && a.IsStr && a.Str == id {
			return true
		}
	}
	return false
}

// slowLog is the server's bounded capture store.
type slowLog struct {
	slowMu sync.Mutex
	slow   []SlowCapture
}

// SlowCaptures returns the retained slow-request captures, newest last.
func (s *Server) SlowCaptures() []SlowCapture {
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	return append([]SlowCapture(nil), s.slow...)
}

// handleSlow serves GET /debug/slow: all captures, or one by request ID
// with ?id= (404 when the ID has no capture).
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	caps := s.SlowCaptures()
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusOK, caps)
		return
	}
	for i := len(caps) - 1; i >= 0; i-- {
		if caps[i].RequestID == id {
			writeJSON(w, http.StatusOK, caps[i])
			return
		}
	}
	writeError(w, http.StatusNotFound, "no slow-request capture for id %q", id)
}
