package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/apiv1"
)

// decodeEnvelope asserts a response body is the uniform error envelope
// with a code from the closed set and a request ID, and returns it.
func decodeEnvelope(t *testing.T, data []byte) apiv1.ErrorEnvelope {
	t.Helper()
	var env apiv1.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("error body is not the envelope: %v in %s", err, data)
	}
	if !apiv1.ValidCode(env.Error.Code) {
		t.Fatalf("code %q outside the closed set (%s)", env.Error.Code, data)
	}
	if env.Error.Message == "" {
		t.Fatalf("empty error message: %s", data)
	}
	if env.Error.RequestID == "" {
		t.Fatalf("error misses the request ID: %s", data)
	}
	return env
}

// TestErrorEnvelopeEverywhere drives every deterministic error shape the
// service produces and asserts one uniform envelope: the {"error":
// {"code", "message", "request_id"}} body with a code from the closed
// set. (429 sheds and panic 500s are asserted in the middleware tests,
// which arrange those conditions; they go through the same writeError.)
func TestErrorEnvelopeEverywhere(t *testing.T) {
	_, base := startServer(t, Config{MaxBody: 512})

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		status   int
		wantCode string
	}{
		{"method on eval", http.MethodGet, "/v1/eval", "", 405, apiv1.CodeMethodNotAllowed},
		{"method on domains", http.MethodPost, "/v1/domains", "{}", 405, apiv1.CodeMethodNotAllowed},
		{"bad JSON", http.MethodPost, "/v1/eval", "{", 400, apiv1.CodeBadRequest},
		{"unknown field", http.MethodPost, "/v1/eval", `{"formulae": "x = x"}`, 400, apiv1.CodeBadRequest},
		{"unknown domain", http.MethodPost, "/v1/eval", `{"domain": "nope", "formula": "x = x"}`, 400, apiv1.CodeBadRequest},
		{"bad formula", http.MethodPost, "/v1/eval", `{"domain": "eq", "formula": "((("}`, 400, apiv1.CodeBadRequest},
		{"oversized body", http.MethodPost, "/v1/eval",
			`{"domain": "eq", "formula": "` + strings.Repeat("x = x & ", 200) + `x = x"}`,
			413, apiv1.CodePayloadTooLarge},
		{"eval failure", http.MethodPost, "/v1/decide", `{"domain": "eq", "sentence": "R(x)"}`, 422, apiv1.CodeEvalFailed},
		{"missing capture", http.MethodGet, "/debug/profiles?id=nope", "", 404, apiv1.CodeNotFound},
		{"bad stats key", http.MethodGet, "/v1/stats/queries?by=bogus", "", 400, apiv1.CodeBadRequest},
		{"stream on active", http.MethodPost, "/v1/eval?stream=1", `{"domain": "eq", "formula": "x = x"}`, 400, apiv1.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			var err error
			if tc.body == "" {
				req, err = http.NewRequest(tc.method, base+tc.path, nil)
			} else {
				req, err = http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			env := decodeEnvelope(t, data)
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (%s)", env.Error.Code, tc.wantCode, data)
			}
		})
	}
}
