// Per-query stats overhead benchmark: the E1 workload through finq.Eval
// with the qstats registry recording and with it disabled. `make
// bench-qstats` runs TestWriteBenchQstats, which measures both and writes
// BENCH_qstats.json; the acceptance bar is under 3% — the recording path
// is one canonical-key serialization plus one shard-locked fold per
// evaluation, amortized over an entire enumeration.
package finq

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/logic"
	"repro/internal/obs/qstats"
	"repro/internal/presburger"
	"repro/internal/query"
)

// runQstatsBench drives the E1 enumeration (∃y (R(y) ∧ x < y) over
// Presburger ℕ, 34-row complete answer) through the public Eval
// entrypoint, which is where the qstats recording hook lives.
func runQstatsBench(b *testing.B) {
	st := natStateB(b, 3, 5, 8, 13, 21, 34)
	f := logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y"))))
	budget := query.EnumerationBudget{Rows: 64, Probe: 4096}
	req := Request{
		Domain: "presburger", State: st, Formula: f,
		Mode: ModeEnumerate, Budget: &budget,
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Eval(ctx, req)
		if err != nil || !res.Answer.Complete {
			b.Fatalf("bad answer: %+v %v", res, err)
		}
	}
}

func BenchmarkEvalE1QstatsOn(b *testing.B) {
	prev := qstats.SetEnabled(true)
	defer qstats.SetEnabled(prev)
	runQstatsBench(b)
}

func BenchmarkEvalE1QstatsOff(b *testing.B) {
	prev := qstats.SetEnabled(false)
	defer qstats.SetEnabled(prev)
	runQstatsBench(b)
}

// TestWriteBenchQstats measures both modes and writes BENCH_qstats.json.
// Gated behind BENCH_QSTATS=1 (the `make bench-qstats` target) so plain
// `go test` stays fast and does not rewrite the checked-in measurement.
func TestWriteBenchQstats(t *testing.T) {
	if os.Getenv("BENCH_QSTATS") == "" {
		t.Skip("set BENCH_QSTATS=1 (or run `make bench-qstats`) to write BENCH_qstats.json")
	}
	// Interleave modes and keep each mode's fastest round, as in
	// TestWriteBenchLog: the minimum is the least-noise cost estimate.
	const rounds = 5
	onNs, offNs := int64(0), int64(0)
	for r := 0; r < rounds; r++ {
		qstats.SetEnabled(true)
		on := testing.Benchmark(func(b *testing.B) { runQstatsBench(b) })
		qstats.SetEnabled(false)
		off := testing.Benchmark(func(b *testing.B) { runQstatsBench(b) })
		qstats.SetEnabled(true)
		if onNs == 0 || on.NsPerOp() < onNs {
			onNs = on.NsPerOp()
		}
		if offNs == 0 || off.NsPerOp() < offNs {
			offNs = off.NsPerOp()
		}
	}
	overhead := 0.0
	if offNs > 0 {
		overhead = (float64(onNs) - float64(offNs)) / float64(offNs) * 100
	}
	out := map[string]any{
		"benchmark":            "finq.Eval, E1 enumeration (34 rows, Presburger), qstats recording on vs off",
		"ns_per_op_qstats_on":  onNs,
		"ns_per_op_qstats_off": offNs,
		"rounds":               rounds,
		"overhead_pct":         overhead,
		"note":                 "min ns/op over interleaved rounds; on = one CanonicalKey serialization + cache tally + shard-locked registry fold per eval, off = the toggle short-circuits before any of it",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_qstats.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_qstats.json: qstats on %d ns/op, off %d ns/op, overhead %.2f%%\n",
		onNs, offNs, overhead)
	if overhead >= 3.0 {
		t.Errorf("qstats overhead %.2f%% exceeds the 3%% budget", overhead)
	}
}
