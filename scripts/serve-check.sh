#!/bin/sh
# serve-check boots finqd on an ephemeral port and probes it from the
# outside, the way an orchestrator would: /healthz and /readyz must answer
# 200, and /metrics must emit a well-formed Prometheus exposition
# (validated by scripts/expocheck.go). The in-process coverage lives in
# `finqd -smoke`; this script covers the over-the-wire path with curl.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill -TERM "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/finqd" ./cmd/finqd
# Aggressive SLO windows so the burn-rate trip section below fires within
# seconds of deliberately slow traffic; harmless for the earlier probes
# (the quick eq eval stays under the 2ms latency objective).
"$tmp/finqd" -addr 127.0.0.1:0 \
    -slo-latency 2ms -slo-target 0.5 -slo-tick 250ms \
    -slo-fast 1s -slo-slow 2s -slo-burn 1.2 \
    -profile-dur 1s -profile-cooldown 1h -slow 5ms \
    2>"$tmp/finqd.log" &
pid=$!

# finqd announces its bound address on stderr once the listener is up.
addr=""
tries=0
while [ -z "$addr" ]; do
    addr="$(sed -n 's#.*serving on http://\([^ ]*\).*#\1#p' "$tmp/finqd.log" | head -n 1)"
    [ -n "$addr" ] && break
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "serve-check: finqd never announced its address" >&2
        cat "$tmp/finqd.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "serve-check: finqd up on $addr"

for path in /healthz /readyz; do
    code="$(curl -s -o "$tmp/body" -w '%{http_code}' "http://$addr$path")"
    if [ "$code" != 200 ]; then
        echo "serve-check: GET $path answered $code, want 200: $(cat "$tmp/body")" >&2
        exit 1
    fi
    echo "serve-check: GET $path 200 $(cat "$tmp/body")"
done

# One eval with a known request id seeds the RED latency histogram with
# an OpenMetrics exemplar; the exposition must carry it and still pass
# expocheck (which validates exemplar syntax on bucket lines).
code="$(curl -s -o "$tmp/body" -w '%{http_code}' -H 'X-Request-Id: serve-check-0001' \
    -d '{"domain": "eq", "state": {"relations": {"F": [["a", "b"]]}}, "formula": "exists y. F(x, y)"}' \
    "http://$addr/v1/eval")"
if [ "$code" != 200 ]; then
    echo "serve-check: POST /v1/eval answered $code, want 200: $(cat "$tmp/body")" >&2
    exit 1
fi
echo "serve-check: POST /v1/eval 200"

code="$(curl -s -o "$tmp/metrics.txt" -w '%{http_code}' "http://$addr/metrics")"
if [ "$code" != 200 ]; then
    echo "serve-check: GET /metrics answered $code, want 200" >&2
    exit 1
fi
if ! grep -q 'request_id="serve-check-0001"' "$tmp/metrics.txt"; then
    echo "serve-check: /metrics misses the eval exemplar for serve-check-0001" >&2
    grep server_eval_latency_us_bucket "$tmp/metrics.txt" >&2 || true
    exit 1
fi
echo "serve-check: exemplar request_id=serve-check-0001 present on /metrics"
"$GO" run scripts/expocheck.go <"$tmp/metrics.txt"

# The per-query stats endpoint answers with the eval's aggregates.
code="$(curl -s -o "$tmp/stats.json" -w '%{http_code}' "http://$addr/v1/stats/queries?by=count")"
if [ "$code" != 200 ]; then
    echo "serve-check: GET /v1/stats/queries answered $code, want 200" >&2
    exit 1
fi
if ! grep -q '"evals"' "$tmp/stats.json"; then
    echo "serve-check: /v1/stats/queries misses the eval aggregates: $(cat "$tmp/stats.json")" >&2
    exit 1
fi
echo "serve-check: GET /v1/stats/queries 200 with aggregates"

# SLO burn-rate trip over the wire: deliberately slow enumerations (each
# well over the 2ms objective) push the eval latency burn past the trip
# threshold; the server must capture a CPU+heap profile pair on its own,
# list it on /debug/profiles, and serve the CPU payload by id as a
# profile `go tool pprof` accepts.
slow_body='{"domain": "presburger", "state": {"relations": {"R": [["5"]]}}, "formula": "~R(x)", "mode": "enumerate", "budget": {"rows": 60, "probe": 1073741824}}'
i=0
while [ "$i" -lt 24 ]; do
    curl -s -o /dev/null -d "$slow_body" "http://$addr/v1/eval"
    i=$((i + 1))
done
capture_id=""
tries=0
while [ -z "$capture_id" ]; do
    curl -s -o "$tmp/profiles.json" "http://$addr/debug/profiles"
    if grep -q '"reason":"slo:eval:latency"' "$tmp/profiles.json"; then
        capture_id="$(grep -o '"id":"prof-[0-9]*"' "$tmp/profiles.json" | head -n 1 | sed 's/.*"prof-/prof-/;s/"$//')"
        break
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "serve-check: SLO trip never produced a profile capture" >&2
        cat "$tmp/profiles.json" >&2
        grep 'slo' "$tmp/finqd.log" >&2 || true
        exit 1
    fi
    # Keep the burn above threshold while the engine ticks.
    curl -s -o /dev/null -d "$slow_body" "http://$addr/v1/eval"
    sleep 0.2
done
echo "serve-check: SLO trip captured $capture_id"

profile_out="${PROFILE_OUT:-$tmp/profile.pb.gz}"
code="$(curl -s -o "$profile_out" -w '%{http_code}' "http://$addr/debug/profiles?id=$capture_id&kind=cpu")"
if [ "$code" != 200 ] || [ ! -s "$profile_out" ]; then
    echo "serve-check: profile download answered $code (or empty payload)" >&2
    exit 1
fi
if ! "$GO" tool pprof -top "$profile_out" >"$tmp/pprof-top.txt" 2>&1; then
    echo "serve-check: go tool pprof rejected the downloaded profile:" >&2
    cat "$tmp/pprof-top.txt" >&2
    exit 1
fi
echo "serve-check: $capture_id CPU profile validates with go tool pprof -top:"
head -n 8 "$tmp/pprof-top.txt" | sed 's/^/serve-check:   /'

# The trip must also be visible on the SLO summary.
code="$(curl -s -o "$tmp/slo.json" -w '%{http_code}' "http://$addr/v1/slo")"
if [ "$code" != 200 ] || ! grep -q '"last_trip_unix_ms"' "$tmp/slo.json"; then
    echo "serve-check: GET /v1/slo answered $code without a recorded trip: $(cat "$tmp/slo.json")" >&2
    exit 1
fi
echo "serve-check: GET /v1/slo 200 with a recorded trip"

# Graceful shutdown: SIGTERM flips /readyz to 503 before the listener
# closes (bounded by finqd's -drain-grace window).
kill -TERM "$pid"
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/readyz" || echo closed)"
case "$code" in
503 | closed) echo "serve-check: /readyz after SIGTERM: $code" ;;
*)
    echo "serve-check: /readyz after SIGTERM answered $code, want 503 (or a closed listener)" >&2
    exit 1
    ;;
esac
wait "$pid" || true
pid=""

echo "serve-check: ok"
