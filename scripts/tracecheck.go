//go:build ignore

// Tracecheck validates a Chrome trace-event file the way the test suite
// does (internal/obs/trace/tracetest.Check): phase grammar, begin/end
// stack discipline, flow-event pairing, and process-lane metadata. CI
// runs it against the stitched multi-process trace from
// `make trace-stitch-demo`; it exits non-zero listing every structural
// problem, so a stitch regression fails the build instead of producing a
// trace that only breaks when a human loads it in Perfetto.
//
//	go run scripts/tracecheck.go stitched.trace.json
//	go run scripts/tracecheck.go -min-events 100 -min-lanes 2 stitched.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/trace/tracetest"
)

func main() {
	minEvents := flag.Int("min-events", 1, "fail unless the trace records at least this many events")
	minLanes := flag.Int("min-lanes", 1, "fail unless the trace spans at least this many process lanes")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: usage: go run scripts/tracecheck.go [-min-events n] [-min-lanes n] <trace.json> ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			failed = true
			continue
		}
		n, problems := tracetest.Check(data)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %s\n", path, p)
		}
		lanes := countLanes(data)
		if n < *minEvents {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %d recorded events, want at least %d\n", path, n, *minEvents)
			failed = true
		}
		if lanes < *minLanes {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %d process lanes, want at least %d\n", path, lanes, *minLanes)
			failed = true
		}
		if len(problems) > 0 {
			failed = true
			continue
		}
		fmt.Printf("tracecheck: %s: %d events across %d process lanes, structurally valid\n", path, n, lanes)
	}
	if failed {
		os.Exit(1)
	}
}

// countLanes counts the distinct pids carrying recorded events (metadata
// and flow arrows excluded) — the stitched trace's process lanes.
func countLanes(data []byte) int {
	var evs []struct {
		Phase string `json:"ph"`
		PID   int64  `json:"pid"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		return 0
	}
	pids := map[int64]bool{}
	for _, e := range evs {
		switch e.Phase {
		case "B", "E", "X", "i":
			pids[e.PID] = true
		}
	}
	return len(pids)
}
