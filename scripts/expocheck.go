//go:build ignore

// Expocheck validates a Prometheus text exposition read from stdin, the
// way a scraper would before ingesting it: every sample line must parse
// as `name[{labels}] value`, every family needs # HELP and # TYPE
// metadata, histogram buckets must be cumulative and monotone, and each
// histogram's +Inf bucket must equal its _count series. OpenMetrics
// exemplars (` # {label="value"} value` after the sample) are accepted on
// finite _bucket lines only and must themselves parse.
//
// It exits nonzero with a one-line diagnosis on the first violation.
// CI pipes `curl /metrics` through it (scripts/serve-check.sh); run it
// by hand with `go run scripts/expocheck.go < metrics.txt`.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type hist struct {
	last, inf, count int64
	hasInf, hasCount bool
}

func main() {
	helps := map[string]bool{}
	types := map[string]string{}
	hists := map[string]*hist{}
	samples := 0

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 2 || fields[1] == "" {
				die("HELP line without text: %q", line)
			}
			helps[fields[0]] = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				die("malformed TYPE line: %q", line)
			}
			types[fields[0]] = fields[1]
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}

		sample := line
		if j := strings.Index(line, " # "); j >= 0 {
			sample = line[:j]
			checkExemplar(line, sample, line[j+3:])
		}
		i := strings.LastIndexByte(sample, ' ')
		if i < 0 {
			die("malformed sample line: %q", line)
		}
		nameAndLabels, valStr := sample[:i], sample[i+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			die("unparseable value in %q: %v", line, err)
		}
		name, labels := nameAndLabels, ""
		if j := strings.IndexByte(nameAndLabels, '{'); j >= 0 {
			name, labels = nameAndLabels[:j], nameAndLabels[j:]
		}
		samples++

		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			die("sample %q has no TYPE for family %q", line, family)
		}
		if !helps[family] && !helps[name] {
			die("sample %q has no HELP for family %q", line, family)
		}
		if types[family] != "histogram" {
			continue
		}
		h := hists[family]
		if h == nil {
			h = &hist{}
			hists[family] = h
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			v := int64(val)
			if strings.Contains(labels, `le="+Inf"`) {
				h.inf, h.hasInf = v, true
			} else {
				if v < h.last {
					die("histogram %s buckets not cumulative: %d after %d", family, v, h.last)
				}
				h.last = v
			}
		case strings.HasSuffix(name, "_count"):
			h.count, h.hasCount = int64(val), true
		}
	}
	if err := sc.Err(); err != nil {
		die("reading stdin: %v", err)
	}
	if samples == 0 || len(types) == 0 {
		die("exposition is empty (no samples or TYPE lines)")
	}
	for family, h := range hists {
		if !h.hasInf || !h.hasCount {
			die("histogram %s misses its +Inf bucket or _count", family)
		}
		if h.inf != h.count {
			die("histogram %s: +Inf bucket %d != _count %d", family, h.inf, h.count)
		}
		if h.last > h.inf {
			die("histogram %s: finite bucket %d exceeds +Inf %d", family, h.last, h.inf)
		}
	}
	fmt.Printf("expocheck: %d samples, %d families, %d histograms ok\n",
		samples, len(types), len(hists))
}

// checkExemplar validates the ` # {label="value",...} value` suffix of a
// sample line. Exemplars are only legal on finite histogram buckets.
func checkExemplar(line, sample, exemplar string) {
	if !strings.Contains(sample, "_bucket") {
		die("exemplar on a non-bucket sample: %q", line)
	}
	if strings.Contains(sample, `le="+Inf"`) {
		die("exemplar on a +Inf bucket: %q", line)
	}
	if !strings.HasPrefix(exemplar, "{") {
		die("exemplar without a labelset: %q", line)
	}
	end := strings.IndexByte(exemplar, '}')
	if end < 0 {
		die("unterminated exemplar labelset: %q", line)
	}
	for _, pair := range strings.Split(exemplar[1:end], ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok || name == "" || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			die("malformed exemplar label %q: %q", pair, line)
		}
	}
	rest := strings.TrimPrefix(exemplar[end+1:], " ")
	value := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		// An optional timestamp may follow the exemplar value.
		value, rest = rest[:i], rest[i+1:]
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			die("unparseable exemplar timestamp in %q: %v", line, err)
		}
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		die("unparseable exemplar value in %q: %v", line, err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "expocheck: "+format+"\n", args...)
	os.Exit(1)
}
