//go:build ignore

// Benchindex consolidates the repository's BENCH_*.json measurement files
// into one versioned index, BENCH_index.json, so a dashboard or a later
// build can diff every tracked overhead and speedup from a single
// deterministic document instead of globbing the tree.
//
// Each BENCH_<name>.json is validated (a JSON object with a "benchmark"
// description string) and embedded verbatim under its <name> key. The
// index carries a schema version so consumers can detect layout changes,
// and the entries are emitted in sorted-key order so reruns produce
// byte-identical output for unchanged inputs.
//
// Run via `make bench-index` or by hand:
//
//	go run scripts/benchindex.go            # writes BENCH_index.json
//	go run scripts/benchindex.go -check     # verifies it is up to date
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// schemaVersion identifies the index layout. Bump it when the envelope
// changes shape (not when a benchmark file adds a field).
const schemaVersion = 1

const indexFile = "BENCH_index.json"

func main() {
	check := flag.Bool("check", false, "verify "+indexFile+" matches the BENCH_*.json files instead of writing it")
	flag.Parse()
	if err := run(*check); err != nil {
		fmt.Fprintln(os.Stderr, "benchindex:", err)
		os.Exit(1)
	}
}

func run(check bool) error {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return err
	}
	sort.Strings(files)

	benchmarks := map[string]json.RawMessage{}
	for _, file := range files {
		if file == indexFile {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(file, "BENCH_"), ".json")
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		// Validate the shape every measurement writer follows: a JSON
		// object with a human-readable "benchmark" description.
		var entry map[string]any
		if err := json.Unmarshal(data, &entry); err != nil {
			return fmt.Errorf("%s: not a JSON object: %w", file, err)
		}
		if desc, ok := entry["benchmark"].(string); !ok || desc == "" {
			return fmt.Errorf("%s: missing the \"benchmark\" description string", file)
		}
		// Re-encode through the decoded map so the index is key-sorted and
		// consistently indented regardless of the source file's formatting.
		canon, err := json.Marshal(entry)
		if err != nil {
			return err
		}
		benchmarks[name] = canon
	}
	if len(benchmarks) == 0 {
		return fmt.Errorf("no BENCH_*.json measurement files found (run the make bench targets first)")
	}

	index := map[string]any{
		"schema":     schemaVersion,
		"note":       "merged view of every BENCH_*.json measurement; regenerate with `make bench-index` after rerunning a bench target",
		"benchmarks": benchmarks,
	}
	out, err := json.MarshalIndent(index, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')

	if check {
		existing, err := os.ReadFile(indexFile)
		if err != nil {
			return fmt.Errorf("reading %s: %w (run `make bench-index`)", indexFile, err)
		}
		if !bytes.Equal(existing, out) {
			return fmt.Errorf("%s is stale; run `make bench-index`", indexFile)
		}
		fmt.Printf("benchindex: %s is up to date (%d benchmarks)\n", indexFile, len(benchmarks))
		return nil
	}
	if err := os.WriteFile(indexFile, out, 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchindex: wrote %s (schema %d, benchmarks: %s)\n", indexFile, schemaVersion, strings.Join(names, ", "))
	return nil
}
