package finq

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obs/trace"
	"repro/internal/obs/tracectx"
)

// TestConcurrentEvalSpanIdentityUnique hammers span-identity minting from
// many goroutines sharing ONE parent trace position — serial evaluations,
// EvalActiveParallel worker fan-out, and enumerations with per-row child
// spans, all concurrently — and demands that every recorded span carries
// the shared trace ID with a globally unique span ID. Run under -race
// this is also the data-race check for the ctx→child minting path.
func TestConcurrentEvalSpanIdentityUnique(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Arm(1 << 16)
	defer rec.Disarm()
	root := tracectx.NewRoot()

	eq := MustLookup("eq")
	est := NewState(MustScheme(map[string]int{"F": 2}))
	for _, pair := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"eve", "abel"}} {
		if err := est.Insert("F", Word(pair[0]), Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	ef, err := eq.Parse("exists y. F(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	pres := MustLookup("presburger")
	pst := NewState(MustScheme(map[string]int{"R": 1}))
	if err := pst.Insert("R", Nat(3)); err != nil {
		t.Fatal(err)
	}
	pf, err := pres.Parse("R(x)")
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		rounds     = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := trace.WithRecorder(context.Background(), rec)
			ctx = tracectx.With(ctx, root)
			for i := 0; i < rounds; i++ {
				reqs := []Request{
					// Serial active-domain evaluation.
					{Domain: eq.Name, State: est, Formula: ef, Mode: ModeActive},
					// EvalActiveParallel: worker fan-out under one span.
					{Domain: eq.Name, State: est, Formula: ef, Mode: ModeActive, Workers: 4},
					// Enumeration: per-row Child spans mint grandchildren.
					{Domain: pres.Name, State: pst, Formula: pf, Mode: ModeEnumerate, Budget: &DefaultBudget},
				}
				for _, req := range reqs {
					if _, err := Eval(ctx, req); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	rec.Disarm()

	events := rec.Dump()
	wantTrace := root.TraceID.String()
	seen := make(map[string]string, len(events))
	identified := 0
	for _, e := range events {
		if e.Phase != trace.PhaseBegin || e.Span == "" {
			continue
		}
		identified++
		if e.Trace != wantTrace {
			t.Fatalf("span %s (%s) carries trace %s, want the shared root %s",
				e.Span, e.Name, e.Trace, wantTrace)
		}
		if e.Parent == "" {
			t.Fatalf("span %s (%s) has no parent; only the synthetic root may be parentless", e.Span, e.Name)
		}
		if prev, dup := seen[e.Span]; dup {
			t.Fatalf("span ID %s minted twice (%s and %s)", e.Span, prev, e.Name)
		}
		seen[e.Span] = e.Name
	}
	// Every goroutine ran serial + parallel + enumerate rounds; each mints
	// at least one identified span, so the floor is goroutines*rounds*3.
	if identified < goroutines*rounds*3 {
		t.Fatalf("only %d identified spans recorded, want >= %d (ring dropped %d)",
			identified, goroutines*rounds*3, rec.Dropped())
	}
}
