// Benchmarks, one family per experiment in DESIGN.md §3. The paper has no
// tables or figures — it is a theory paper — so the benchmark harness
// regenerates the experiment index E1–E10 instead: each family drives the
// algorithm that makes the corresponding theorem executable, with input
// sizes swept so EXPERIMENTS.md can report scaling shapes.
package finq

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/autarith"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/nsucc"
	"repro/internal/logic"
	"repro/internal/presburger"
	"repro/internal/query"
	"repro/internal/traces"
	"repro/internal/turing"
)

// --- E1: §1.1 enumeration algorithm -------------------------------------

func natStateB(b *testing.B, values ...int64) *db.State {
	b.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, v := range values {
		if err := st.Insert("R", domain.Int(v)); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

// BenchmarkE1Enumeration answers "numbers below the largest stored value"
// with answer sizes 4, 16, and 64 — the cost is dominated by one decision
// per produced row plus one per candidate probe.
func BenchmarkE1Enumeration(b *testing.B) {
	for _, n := range []int64{4, 16, 64} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			st := natStateB(b, n)
			f := logic.Exists("y", logic.And(
				logic.Atom("R", logic.Var("y")),
				logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y"))))
			budget := query.EnumerationBudget{Rows: int(n) + 10, Probe: 1 << 16}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ans, err := query.EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, budget)
				if err != nil || !ans.Complete || ans.Rows.Len() != int(n) {
					b.Fatalf("bad answer: %v %v", ans, err)
				}
			}
		})
	}
}

// --- E3: Theorem 2.2 finitization ----------------------------------------

// BenchmarkE3Finitization builds the finitization and decides that it is
// finite (the Theorem 2.5 equivalence check), for queries with 1–3 free
// variables.
func BenchmarkE3Finitization(b *testing.B) {
	st := natStateB(b, 3, 7)
	vars := []string{"x", "y", "z"}
	for k := 1; k <= 3; k++ {
		b.Run(fmt.Sprintf("freevars=%d", k), func(b *testing.B) {
			conj := make([]*logic.Formula, k)
			for i := 0; i < k; i++ {
				conj[i] = logic.Atom("R", logic.Var(vars[i]))
			}
			f := logic.And(conj...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fin := core.Finitize(f)
				finite, err := core.RelativeSafetyPresburger(st, fin)
				if err != nil || !finite {
					b.Fatalf("finitization not finite: %v", err)
				}
			}
		})
	}
}

// --- E4: Theorem 2.5 relative safety over N< extensions ------------------

func BenchmarkE4RelSafetyPresburger(b *testing.B) {
	st := natStateB(b, 1, 4, 9)
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		name string
		f    *logic.Formula
	}{
		{"finite", logic.And(logic.Atom("R", x),
			logic.Atom(presburger.PredLt, x, logic.Const("7")))},
		{"infinite", logic.Not(logic.Atom("R", x))},
		{"join", logic.And(logic.Atom("R", x), logic.Atom("R", y),
			logic.Atom(presburger.PredLt, x, y))},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RelativeSafetyPresburger(st, c.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Theorems 2.6/2.7, the successor domain --------------------------

func BenchmarkE5NsuccQE(b *testing.B) {
	s := func(t logic.Term) logic.Term { return logic.App(nsucc.FuncS, t) }
	for depth := 1; depth <= 3; depth++ {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			// ∃x1 … ∃xd (x1' = x2 ∧ … ∧ xd'' = y): chained eliminations.
			body := logic.Eq(s(s(logic.Var("v"+strconv.Itoa(depth-1)))), logic.Var("y"))
			f := body
			for i := depth - 1; i >= 0; i-- {
				name := "v" + strconv.Itoa(i)
				if i > 0 {
					f = logic.And(logic.Eq(s(logic.Var("v"+strconv.Itoa(i-1))), logic.Var(name)), f)
				}
				f = logic.Exists(name, f)
			}
			e := nsucc.Eliminator{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := e.Eliminate(f)
				if err != nil || !g.QuantifierFree() {
					b.Fatalf("elimination failed: %v %v", g, err)
				}
			}
		})
	}
}

func BenchmarkE5NsuccRelSafety(b *testing.B) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, v := range []int64{3, 10, 17} {
		if err := st.Insert("R", domain.Int(v)); err != nil {
			b.Fatal(err)
		}
	}
	f := logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Eq(logic.App(nsucc.FuncS, logic.Var("x")), logic.Var("y"))))
	for i := 0; i < b.N; i++ {
		finite, err := core.RelativeSafetyNsucc(st, f)
		if err != nil || !finite {
			b.Fatal(err)
		}
	}
}

// --- E6: Lemma A.2 --------------------------------------------------------

func BenchmarkE6LemmaA2(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("constraints=%d", k), func(b *testing.B) {
			// Half E_4 constraints on distinct length-4 words (same count,
			// same prefix length: always jointly satisfiable), half D_2
			// constraints (2 ≤ 4, so never in conflict with the E's).
			var sys traces.System
			for i := 0; i < k; i++ {
				word := ""
				for bit := 0; bit < 4; bit++ {
					if (i>>bit)&1 == 1 {
						word += "1"
					} else {
						word += "&"
					}
				}
				if i%2 == 0 {
					sys = append(sys, traces.Constraint{Exact: true, Count: 4, Word: word})
				} else {
					sys = append(sys, traces.Constraint{Count: 2, Word: word})
				}
			}
			if ok, conflict := sys.Satisfiable(); !ok {
				b.Fatalf("benchmark system unsatisfiable: %v", conflict)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := sys.Witness()
				if err != nil {
					b.Fatal(err)
				}
				holds, err := sys.Check(turing.Encode(m))
				if err != nil || !holds {
					b.Fatalf("witness check failed: %v", err)
				}
			}
		})
	}
}

// --- E7: Theorem A.3 / Corollary A.4 — trace theory QE --------------------

func BenchmarkE7TraceQE(b *testing.B) {
	busy := turing.Encode(turing.BusyWork(1))
	x := logic.Var("x")
	cases := []struct {
		name string
		f    *logic.Formula
	}{
		{"sorts", logic.Forall("x", logic.Or(
			logic.Atom(traces.PredM, x), logic.Atom(traces.PredW, x),
			logic.Atom(traces.PredT, x), logic.Atom(traces.PredO, x)))},
		{"lemmaA2", logic.Exists("x", logic.And(
			logic.Atom(traces.PredM, x),
			logic.Atom("E2", x, logic.Const("11")),
			logic.Atom("D3", x, logic.Const("1&"))))},
		{"counting", logic.Exists("x", logic.And(
			logic.Atom(traces.PredP, logic.Const(busy), logic.Const("1"), x),
			logic.Neq(x, logic.Const("11"))))},
		{"nested", logic.Forall("x", logic.Implies(logic.Atom(traces.PredM, x),
			logic.Exists("p", logic.And(logic.Atom(traces.PredT, logic.Var("p")),
				logic.Eq(logic.App(traces.FuncM, logic.Var("p")), x)))))},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh decider (and thus fresh decision cache) per
				// iteration: a shared one would reduce every iteration after
				// the first to a cache hit and benchmark the map, not QE.
				dec := traces.Decider()
				if _, err := dec.Decide(c.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: Theorem 3.1 — totality verification ------------------------------

func BenchmarkE8Totality(b *testing.B) {
	busy := turing.Encode(turing.BusyWork(1))
	candidate := logic.And(
		logic.Atom(traces.PredT, logic.Var("x")),
		logic.Eq(logic.App(traces.FuncM, logic.Var("x")), logic.Const(busy)),
		logic.Eq(logic.App(traces.FuncW, logic.Var("x")), logic.Const(core.DBConst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := core.VerifyTotality(busy, candidate)
		if err != nil || !ok {
			b.Fatalf("verification failed: %v", err)
		}
	}
}

// --- E9: Theorem 3.3 — halting reduction ----------------------------------

func BenchmarkE9HaltingReduction(b *testing.B) {
	cases := []struct {
		name    string
		machine string
		input   string
		want    domain.Verdict
	}{
		{"halts", turing.Encode(turing.BusyWork(3)), "1", domain.Holds},
		{"diverges", turing.Encode(turing.LoopForever()), "1", domain.Fails},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, st, err := core.HaltingToRelativeSafety(c.machine, c.input)
				if err != nil {
					b.Fatal(err)
				}
				v, err := core.RelativeSafetyTraces(st, f, core.DefaultTracesBudget)
				if err != nil || v != c.want {
					b.Fatalf("verdict %v, err %v", v, err)
				}
			}
		})
	}
}

// --- Substrate benchmarks --------------------------------------------------

// BenchmarkEngines compares the two independent Presburger decision
// procedures — Cooper's elimination and the automata-theoretic method — on
// the same sentence family.
func BenchmarkEngines(b *testing.B) {
	x, y := logic.Var("x"), logic.Var("y")
	sentences := map[string]*logic.Formula{
		"order": logic.Forall("x", logic.Exists("y",
			logic.Atom(presburger.PredLt, x, y))),
		"parity": logic.Forall("x", logic.Or(
			logic.Atom(presburger.PredDvd, logic.Const("2"), x),
			logic.Atom(presburger.PredDvd, logic.Const("2"),
				logic.App(presburger.FuncAdd, x, logic.Const("1"))))),
		"linear": logic.ExistsAll([]string{"x", "y"}, logic.And(
			logic.Eq(logic.App(presburger.FuncAdd, x, y), logic.Const("9")),
			logic.Atom(presburger.PredLt, x, y))),
	}
	for name, f := range sentences {
		b.Run("cooper/"+name, func(b *testing.B) {
			e := presburger.Eliminator{}
			for i := 0; i < b.N; i++ {
				if _, err := e.Decide(f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("automata/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := autarith.Decide(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCooperQE sweeps quantifier depth in Presburger sentences.
func BenchmarkCooperQE(b *testing.B) {
	for depth := 1; depth <= 3; depth++ {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			vars := []string{"x", "y", "z"}[:depth]
			var f *logic.Formula = logic.Atom(presburger.PredLt,
				logic.Var(vars[depth-1]), logic.Const("20"))
			for i := depth - 1; i >= 0; i-- {
				if i > 0 {
					f = logic.And(logic.Atom(presburger.PredLt, logic.Var(vars[i-1]), logic.Var(vars[i])), f)
				}
				f = logic.Exists(vars[i], f)
			}
			e := presburger.Eliminator{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Decide(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations ---------------------------------------------------------
//
// DESIGN.md calls out two design choices inside the eliminators; the
// ablation benchmarks measure what each buys.

// BenchmarkAblationTraceSimplify compares the trace-theory eliminator with
// and without intermediate propositional simplification. Without it, dead
// sort branches and duplicate literals survive into the next DNF.
func BenchmarkAblationTraceSimplify(b *testing.B) {
	// An ↔ sentence: expanding ↔ duplicates subformulas, and without
	// intermediate simplification the duplicated dead branches multiply
	// through the per-sort DNFs of two nested eliminations. Even one more
	// conjoined ↔ makes the ablated variant run for *minutes* (measured >11
	// min) while the simplified pipeline stays in microseconds — simplify is
	// what keeps the appendix's "finite (although big) disjunction" small
	// in practice.
	x, y := logic.Var("x"), logic.Var("y")
	inner := logic.Iff(logic.Atom(traces.PredM, x), logic.Atom(traces.PredM, y))
	f := logic.Forall("x", logic.Exists("y", logic.And(inner, logic.Neq(x, y))))
	for _, ablated := range []bool{false, true} {
		name := "with-simplify"
		if ablated {
			name = "no-simplify"
		}
		b.Run(name, func(b *testing.B) {
			e := traces.Eliminator{NoIntermediateSimplify: ablated}
			for i := 0; i < b.N; i++ {
				g, err := e.Eliminate(f)
				if err != nil {
					b.Fatal(err)
				}
				_ = g
			}
		})
	}
}

// BenchmarkAblationCooperDedup compares Cooper's algorithm with and without
// boundary-set deduplication on a formula whose bounds repeat.
func BenchmarkAblationCooperDedup(b *testing.B) {
	x, y := logic.Var("x"), logic.Var("y")
	// Three syntactically repeated lower bounds y < x.
	body := logic.And(
		logic.Atom(presburger.PredLt, y, x),
		logic.Atom(presburger.PredLt, y, x),
		logic.Atom(presburger.PredLt, y, x),
		logic.Atom(presburger.PredLt, x, logic.Const("50")))
	f := logic.Forall("y", logic.Implies(
		logic.Atom(presburger.PredLt, y, logic.Const("10")),
		logic.Exists("x", body)))
	for _, ablated := range []bool{false, true} {
		name := "with-dedup"
		if ablated {
			name = "no-dedup"
		}
		b.Run(name, func(b *testing.B) {
			e := presburger.Eliminator{NoBoundDedup: ablated}
			for i := 0; i < b.N; i++ {
				v, err := e.Decide(f)
				if err != nil || !v {
					b.Fatalf("decide: %v %v", v, err)
				}
			}
		})
	}
}

// BenchmarkEvalParallel compares serial and fanned-out active-domain
// evaluation on a 3-variable join. On a single-CPU machine (like the
// development box, nproc=1) the fan-out cannot pay and the bench shows
// parity; with real cores the outer-variable split scales near-linearly
// since workers share nothing but the read-only state.
func BenchmarkEvalParallel(b *testing.B) {
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for i := 0; i < 24; i++ {
		if err := st.Insert("F", domain.Int(int64(i)), domain.Int(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	f := logic.Exists("y", logic.And(
		logic.Atom("F", logic.Var("x"), logic.Var("y")),
		logic.Atom("F", logic.Var("y"), logic.Var("z"))))
	d := presburger.Domain{}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.EvalActive(d, st, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.EvalActiveParallel(d, st, f, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTuringSimulation measures raw machine stepping.
func BenchmarkTuringSimulation(b *testing.B) {
	m := turing.LoopForever()
	for _, steps := range []int{100, 10000} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := turing.Run(m, "1&1", steps)
				if r.Halted {
					b.Fatal("loop halted")
				}
			}
		})
	}
}

// BenchmarkTraceValidation measures P's recursiveness (Fact A.1): trace
// parsing and regeneration.
func BenchmarkTraceValidation(b *testing.B) {
	m := turing.BusyWork(8)
	enc := turing.Encode(m)
	tr, err := turing.Trace(m, enc, "1&1", 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !turing.IsTraceWord(tr) {
			b.Fatal("validation failed")
		}
	}
}

// BenchmarkEvalActive measures active-domain evaluation on the grandfather
// join with growing relations.
func BenchmarkEvalActive(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
			for i := 0; i < n; i++ {
				if err := st.Insert("F", domain.Int(int64(i)), domain.Int(int64(i+1))); err != nil {
					b.Fatal(err)
				}
			}
			f := logic.Exists("y", logic.And(
				logic.Atom("F", logic.Var("x"), logic.Var("y")),
				logic.Atom("F", logic.Var("y"), logic.Var("z"))))
			d := presburger.Domain{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ans, err := query.EvalActive(d, st, f)
				if err != nil || ans.Rows.Len() != n-1 {
					b.Fatalf("bad answer: %v %v", ans.Rows.Len(), err)
				}
			}
		})
	}
}
