package finq

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	names := []string{"eq", "nless", "presburger", "zless", "nsucc", "wordlex", "traces"}
	if len(Domains()) != len(names) {
		t.Fatalf("expected %d domains", len(names))
	}
	for _, n := range names {
		d, err := Lookup(n)
		if err != nil || d.Name != n {
			t.Errorf("Lookup(%q): %v %v", n, d.Name, err)
		}
		if d.Domain == nil || d.Decider == nil || d.Eliminator == nil {
			t.Errorf("domain %q missing capabilities", n)
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Errorf("unknown domain accepted")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	d := MustLookup("eq")
	scheme := MustScheme(map[string]int{"F": 2})
	st := NewState(scheme)
	if err := st.Insert("F", Word("adam"), Word("abel")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("F", Word("adam"), Word("cain")); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("exists y. F(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := EvalActive(d, st, f)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rows.Len() != 1 {
		t.Errorf("fathers = %d, want 1", ans.Rows.Len())
	}
	v, err := RelativeSafety(d, st, f)
	if err != nil || v != Holds {
		t.Errorf("RelativeSafety = %v, %v", v, err)
	}
	report := SafeRange(scheme, f)
	if !report.Safe {
		t.Errorf("safe-range analysis failed")
	}
}

func TestFacadeEnumerate(t *testing.T) {
	d := MustLookup("presburger")
	st := NewState(MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", Nat(3)); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("exists y. (R(y) & lt(x, y))")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Enumerate(d, st, f, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete || ans.Rows.Len() != 3 {
		t.Errorf("enumeration: %d rows, complete=%v", ans.Rows.Len(), ans.Complete)
	}
}

func TestFacadeDecideAndEliminate(t *testing.T) {
	d := MustLookup("nsucc")
	f, err := d.Parse("exists x. s(x) = 3")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decide(d, f)
	if err != nil || !v {
		t.Errorf("Decide: %v %v", v, err)
	}
	g, err := Eliminate(d, f)
	if err != nil || !g.QuantifierFree() {
		t.Errorf("Eliminate: %v %v", g, err)
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	d := MustLookup("traces")
	data := []byte(`{
		"relations": {"Runs": [["*", "1"], ["*", "1&"]]},
		"constants": {"c": "11"}
	}`)
	st, err := ParseState(d, data)
	if err != nil {
		t.Fatalf("ParseState: %v", err)
	}
	rel, err := st.Relation("Runs")
	if err != nil || rel.Len() != 2 || rel.Arity() != 2 {
		t.Fatalf("relation wrong: %v %v", rel, err)
	}
	v, err := st.Constant("c")
	if err != nil || v.Key() != "11" {
		t.Fatalf("constant wrong: %v %v", v, err)
	}
	out, err := MarshalState(d, st)
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	st2, err := ParseState(d, out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	rel2, _ := st2.Relation("Runs")
	if rel2.Len() != 2 {
		t.Errorf("round trip lost rows")
	}
}

func TestStateJSONErrors(t *testing.T) {
	d := MustLookup("presburger")
	bad := []string{
		`{`,
		`{"relations": {"R": []}}`, // arity unknown
		`{"relations": {"R": [["1"], ["1","2"]]}}`,     // ragged
		`{"relations": {"R": [["x"]]}}`,                // bad numeral
		`{"constants": {"c": "abc"}, "relations": {}}`, // bad constant value
	}
	for _, src := range bad {
		if _, err := ParseState(d, []byte(src)); err == nil {
			t.Errorf("ParseState(%s) accepted", src)
		}
	}
}

func TestFacadeTraces(t *testing.T) {
	// The Theorem 3.1/3.3 surface.
	f, st, err := HaltingToRelativeSafety("*", "1")
	if err != nil {
		t.Fatal(err)
	}
	d := MustLookup("traces")
	v, err := RelativeSafety(d, st, f)
	if err != nil || v != Holds {
		t.Errorf("zero-rule machine halts: %v %v", v, err)
	}
	q := TotalityQuery("*")
	if !strings.Contains(q.String(), "P(") {
		t.Errorf("totality query shape: %v", q)
	}
	cand, err := d.ParseWithConstants(`T(x) & m(x) = "*" & w(x) = c`, "c")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyTotality("*", cand)
	if err != nil || !ok {
		t.Errorf("VerifyTotality: %v %v", ok, err)
	}
	if TotalityScheme() == nil {
		t.Errorf("scheme nil")
	}
}

func TestFinitizeFacade(t *testing.T) {
	d := MustLookup("presburger")
	f, err := d.Parse("~R(x)")
	if err != nil {
		t.Fatal(err)
	}
	g := Finitize(f)
	if g.Equal(f) {
		t.Errorf("finitization should extend the formula")
	}
	st := NewState(MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", Nat(1)); err != nil {
		t.Fatal(err)
	}
	v, err := RelativeSafety(d, st, g)
	if err != nil || v != Holds {
		t.Errorf("finitization not finite: %v %v", v, err)
	}
}
