// Package client is the typed Go client for the finqd /v1 API. It speaks
// exactly the apiv1 wire contract — typed request and response bodies,
// the uniform error envelope, and both streaming encodings — so programs
// drive the service without hand-built JSON: finqd's -smoke check, the
// cmd/finqload load generator, and the server's own tests all go through
// it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	finq "repro"
	"repro/apiv1"
	"repro/internal/obs/tracectx"
)

// Client calls one finqd instance. The zero value is not usable; New
// binds the base URL.
//
// Distributed-trace propagation: when the call context carries a trace
// position (tracectx.With), every request goes out with `traceparent`
// (and `tracestate`) headers, so the server's spans become children of
// the caller's — one trace ID spans both processes. The server echoes
// the request span's position back as the response's `traceparent`;
// OnResponse observes it.
type Client struct {
	base string
	http *http.Client

	// OnResponse, when non-nil, observes every HTTP response's status and
	// headers before the body is decoded — the `traceparent` echo (the
	// server-side request span's position) and the X-Request-Id. Set it
	// before issuing requests; it runs on the calling goroutine.
	OnResponse func(status int, header http.Header)
}

// inject adds the outbound trace headers from ctx, if any.
func inject(ctx context.Context, h http.Header) {
	if tc, ok := tracectx.From(ctx); ok {
		h.Set("traceparent", tc.Traceparent())
		if tc.State != "" {
			h.Set("tracestate", tc.State)
		}
	}
}

// observe reports a response to the OnResponse hook, if set.
func (c *Client) observe(resp *http.Response) {
	if c.OnResponse != nil {
		c.OnResponse(resp.StatusCode, resp.Header)
	}
}

// New returns a client for the service at baseURL (for example
// "http://127.0.0.1:8080"). A nil httpClient means http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response decoded from the uniform error envelope.
// Code is from the apiv1 closed set; Status is the HTTP status.
type APIError struct {
	Status    int
	Code      string
	Message   string
	RequestID string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("finqd: %d %s: %s", e.Status, e.Code, e.Message)
}

// decodeError turns an error response into an *APIError, falling back to
// a synthesized envelope when the body is not one (a proxy's HTML 502,
// say), so callers always get the one error shape.
func decodeError(status int, body []byte) error {
	var env apiv1.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{
			Status:    status,
			Code:      env.Error.Code,
			Message:   env.Error.Message,
			RequestID: env.Error.RequestID,
		}
	}
	return &APIError{
		Status:  status,
		Code:    apiv1.CodeInternal,
		Message: fmt.Sprintf("non-envelope error body: %.200s", body),
	}
}

// do runs one JSON request/response exchange. A nil in sends no body; a
// nil out discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", apiv1.ContentTypeJSON)
	}
	inject(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.observe(resp)
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Eval runs POST /v1/eval (the buffered JSON response).
func (c *Client) Eval(ctx context.Context, req apiv1.EvalRequest) (*apiv1.EvalResponse, error) {
	var out apiv1.EvalResponse
	if err := c.do(ctx, http.MethodPost, "/v1/eval", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvalBatch runs POST /v1/eval/batch.
func (c *Client) EvalBatch(ctx context.Context, req apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	var out apiv1.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/eval/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Decide runs POST /v1/decide.
func (c *Client) Decide(ctx context.Context, req apiv1.DecideRequest) (*apiv1.DecideResponse, error) {
	var out apiv1.DecideResponse
	if err := c.do(ctx, http.MethodPost, "/v1/decide", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QE runs POST /v1/qe.
func (c *Client) QE(ctx context.Context, req apiv1.QERequest) (*apiv1.QEResponse, error) {
	var out apiv1.QEResponse
	if err := c.do(ctx, http.MethodPost, "/v1/qe", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Safety runs POST /v1/safety.
func (c *Client) Safety(ctx context.Context, req apiv1.SafetyRequest) (*apiv1.SafetyResponse, error) {
	var out apiv1.SafetyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/safety", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Domains runs GET /v1/domains.
func (c *Client) Domains(ctx context.Context) (apiv1.DomainsResponse, error) {
	var out apiv1.DomainsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/domains", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Version runs GET /v1/version.
func (c *Client) Version(ctx context.Context) (*apiv1.VersionResponse, error) {
	var out apiv1.VersionResponse
	if err := c.do(ctx, http.MethodGet, "/v1/version", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryStats runs GET /v1/stats/queries.
func (c *Client) QueryStats(ctx context.Context, by string, k int) (*apiv1.QueryStatsResponse, error) {
	path := "/v1/stats/queries"
	if by != "" {
		path += "?by=" + by
	}
	if k > 0 {
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		path += fmt.Sprintf("%sk=%d", sep, k)
	}
	var out apiv1.QueryStatsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz runs GET /healthz.
func (c *Client) Healthz(ctx context.Context) (*apiv1.Health, error) {
	var out apiv1.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Readyz runs GET /readyz. A draining server answers 503 with a body;
// that surfaces as an *APIError with Status 503.
func (c *Client) Readyz(ctx context.Context) (*apiv1.Health, error) {
	var out apiv1.Health
	if err := c.do(ctx, http.MethodGet, "/readyz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamResult is what a finished (or broken-off) streaming evaluation
// produced: the answer columns from the header and the trailer's result
// metadata. Rows were delivered to the OnRow callback as they arrived.
type StreamResult struct {
	// Vars are the answer columns, from the stream header.
	Vars []string
	// Trailer is the final metadata line/frame.
	Trailer apiv1.StreamTrailer
}

// EvalStream runs POST /v1/eval with streaming row delivery: onRow
// receives each answer row as the server flushes it, and the trailer's
// metadata comes back once the stream ends. The encoding is
// apiv1.ContentTypeNDJSON or apiv1.ContentTypeFrames ("" means NDJSON).
// A non-nil onRow error abandons the stream (the server sees the
// disconnect and stops the evaluation with stop reason "client-gone").
func (c *Client) EvalStream(ctx context.Context, req apiv1.EvalRequest, encoding string,
	onRow func(row []string) error) (*StreamResult, error) {

	if encoding == "" {
		encoding = apiv1.ContentTypeNDJSON
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/eval", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", apiv1.ContentTypeJSON)
	hreq.Header.Set("Accept", encoding)
	inject(ctx, hreq.Header)
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	c.observe(resp)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, decodeError(resp.StatusCode, body)
	}
	if encoding == apiv1.ContentTypeFrames {
		return readFrameStream(resp.Body, onRow)
	}
	return readNDJSONStream(resp.Body, onRow)
}

// readNDJSONStream consumes the line encoding: a header line, row lines
// (distinguished by their "row" key), and a trailer line.
func readNDJSONStream(r io.Reader, onRow func([]string) error) (*StreamResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var hdr apiv1.StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("client: bad stream header: %w", err)
	}
	out := &StreamResult{Vars: hdr.Vars}
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Row *[]string `json:"row"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: bad stream line: %w", err)
		}
		if probe.Row != nil {
			if onRow != nil {
				if err := onRow(*probe.Row); err != nil {
					return out, err
				}
			}
			continue
		}
		if err := json.Unmarshal(line, &out.Trailer); err != nil {
			return nil, fmt.Errorf("client: bad stream trailer: %w", err)
		}
		return out, nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// readFrameStream consumes the binary frame encoding via the finq frame
// codec.
func readFrameStream(r io.Reader, onRow func([]string) error) (*StreamResult, error) {
	br := bufio.NewReader(r)
	out := &StreamResult{}
	sawHeader := false
	for {
		typ, payload, err := finq.ReadFrame(br)
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF // no trailer seen
		}
		if err != nil {
			return nil, err
		}
		switch typ {
		case finq.FrameHeader:
			var hdr apiv1.StreamHeader
			if err := json.Unmarshal(payload, &hdr); err != nil {
				return nil, fmt.Errorf("client: bad header frame: %w", err)
			}
			out.Vars = hdr.Vars
			sawHeader = true
		case finq.FrameRow:
			cells, err := finq.DecodeRowPayload(payload)
			if err != nil {
				return nil, err
			}
			if onRow != nil {
				if err := onRow(cells); err != nil {
					return out, err
				}
			}
		case finq.FrameTrailer:
			if err := json.Unmarshal(payload, &out.Trailer); err != nil {
				return nil, fmt.Errorf("client: bad trailer frame: %w", err)
			}
			if !sawHeader {
				return nil, fmt.Errorf("client: trailer before header")
			}
			return out, nil
		default:
			return nil, fmt.Errorf("client: unknown frame type %q", typ)
		}
	}
}
