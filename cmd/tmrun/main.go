// Command tmrun works with the paper's Turing machines: running them,
// printing traces (the elements of the domain T), and encoding/decoding the
// machine words of Section 3.
//
// Usage:
//
//	tmrun builtins
//	tmrun encode  -builtin <name>
//	tmrun decode  "<machine word>"
//	tmrun run     [-builtin <name> | -machine "<word>"] -input <w> [-steps n]
//	tmrun traces  [-builtin <name> | -machine "<word>"] -input <w> [-max n]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	finq "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/turing"
)

var builtins = map[string]func() *turing.Machine{
	"halt":       turing.HaltImmediately,
	"loop":       turing.LoopForever,
	"erase":      turing.EraseAndHalt,
	"successor":  turing.Successor,
	"halt-iff-1": turing.HaltIffStartsWithOne,
	"busy2":      func() *turing.Machine { return turing.BusyWork(2) },
	"busy5":      func() *turing.Machine { return turing.BusyWork(5) },
}

func main() {
	args, finish, err := cliutil.Setup("tmrun", os.Args[1:], false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmrun:", err)
		os.Exit(1)
	}
	defer finish()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "version", "-version", "--version":
		fmt.Println(finq.Version())
		return
	case "builtins":
		var names []string
		for n := range builtins {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := builtins[n]()
			fmt.Printf("%-12s %2d rules  %s\n", n, m.NumRules(), turing.Encode(m))
		}
	case "encode":
		err = runEncode(args[1:])
	case "decode":
		err = runDecode(args[1:])
	case "run":
		err = runRun(args[1:])
	case "traces":
		err = runTraces(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmrun:", err)
		finish()
		os.Exit(1)
	}
	// Exit report: what the run cost (steps, tape growth, traces built).
	obs.Take().WriteSummary(os.Stderr)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tmrun builtins
  tmrun encode -builtin <name>
  tmrun decode "<machine word>"
  tmrun run    [-builtin <name> | -machine "<word>"] -input <w> [-steps n]
  tmrun traces [-builtin <name> | -machine "<word>"] -input <w> [-max n]
  tmrun version

global flags:
  -debug-addr <host:port>  serve /debug/obs, /metrics, /debug/vars, /debug/pprof/
  -trace-out <file>        record execution and write a Chrome trace on exit
  -log-level <level>       debug|info|warn|error for structured logs (default info)
  -log-format <fmt>        text|json log output (default text)
  -cache[=on|off]          memoize decision-procedure calls (default off)

a metrics summary (steps, tape growth) is printed to stderr on exit`)
}

func pickMachine(builtin, word string) (*turing.Machine, string, error) {
	switch {
	case builtin != "" && word != "":
		return nil, "", fmt.Errorf("give either -builtin or -machine, not both")
	case builtin != "":
		mk, ok := builtins[builtin]
		if !ok {
			return nil, "", fmt.Errorf("unknown builtin %q (see `tmrun builtins`)", builtin)
		}
		m := mk()
		return m, turing.Encode(m), nil
	case word != "":
		m, err := turing.Decode(word)
		if err != nil {
			return nil, "", err
		}
		return m, word, nil
	}
	return nil, "", fmt.Errorf("a machine is required (-builtin or -machine)")
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ContinueOnError)
	builtin := fs.String("builtin", "", "builtin machine name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, enc, err := pickMachine(*builtin, "")
	if err != nil {
		return err
	}
	fmt.Println(enc)
	fmt.Println(m)
	return nil
}

func runDecode(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected one machine word")
	}
	m, err := turing.Decode(args[0])
	if err != nil {
		return err
	}
	fmt.Println(m)
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	builtin := fs.String("builtin", "", "builtin machine name")
	word := fs.String("machine", "", "encoded machine word")
	input := fs.String("input", "", "input word over {1,&}")
	steps := fs.Int("steps", 10000, "step budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, _, err := pickMachine(*builtin, *word)
	if err != nil {
		return err
	}
	if !turing.ValidInput(*input) {
		return fmt.Errorf("input %q is not over {1,&}", *input)
	}
	r := turing.Run(m, *input, *steps)
	if r.Halted {
		fmt.Printf("halted after %d steps; result %q\n", r.Steps, r.Output)
	} else {
		fmt.Printf("still running after %d steps\n", r.Steps)
	}
	return nil
}

func runTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	builtin := fs.String("builtin", "", "builtin machine name")
	word := fs.String("machine", "", "encoded machine word")
	input := fs.String("input", "", "input word over {1,&}")
	max := fs.Int("max", 5, "maximum number of steps to trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, enc, err := pickMachine(*builtin, *word)
	if err != nil {
		return err
	}
	if !turing.ValidInput(*input) {
		return fmt.Errorf("input %q is not over {1,&}", *input)
	}
	all := turing.Traces(m, enc, *input, *max)
	n, halted := turing.StepsToHalt(m, *input, *max)
	for i, tr := range all {
		fmt.Printf("trace %d (%d steps): %s\n", i, i, tr)
	}
	if halted {
		fmt.Printf("machine halts after %d steps: exactly %d traces — E_%d holds\n", n, n+1, n+1)
	} else {
		fmt.Printf("machine still running after %d steps: trace family continues (D_i for all probed i)\n", *max)
	}
	return nil
}
