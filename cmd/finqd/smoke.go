package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	finq "repro"
	"repro/apiv1"
	apiclient "repro/client"
	"repro/internal/obs/logctx"
	"repro/internal/obs/prof"
	"repro/internal/obs/trace"
	"repro/internal/obs/tracectx"
	"repro/internal/server"
)

// smokeChecks drives one request per endpoint against a live server. Each
// body doubles as a tiny example of the wire format.
var smokeChecks = []struct {
	name   string
	method string
	path   string
	body   string
	want   string // substring the 200 response must contain
}{
	{
		name: "domains", method: "GET", path: "/v1/domains",
		want: `"presburger"`,
	},
	{
		name: "decide", method: "POST", path: "/v1/decide",
		body: `{"domain": "presburger", "sentence": "forall x. exists y. lt(x, y)"}`,
		want: `"truth":true`,
	},
	{
		name: "qe", method: "POST", path: "/v1/qe",
		body: `{"domain": "eq", "formula": "exists y. ~(y = x)"}`,
		want: `"formula"`,
	},
	{
		name: "eval", method: "POST", path: "/v1/eval",
		body: `{"domain": "eq",
		        "state": {"relations": {"F": [["adam", "abel"], ["adam", "cain"]]}},
		        "formula": "exists y. F(x, y)"}`,
		want: `"complete":true`,
	},
	{
		name: "eval-enumerate-partial", method: "POST", path: "/v1/eval",
		body: `{"domain": "presburger",
		        "state": {"relations": {"R": [["5"]]}},
		        "formula": "~R(x)", "mode": "enumerate",
		        "budget": {"rows": 4, "probe": 4096}}`,
		want: `"stopped":"budget"`,
	},
	{
		name: "safety", method: "POST", path: "/v1/safety",
		body: `{"domain": "eq",
		        "state": {"relations": {"F": [["adam", "abel"]]}},
		        "formula": "exists y. F(x, y)"}`,
		want: `"verdict":"holds"`,
	},
	{
		name: "healthz", method: "GET", path: "/healthz",
		want: `"status":"ok"`,
	},
	{
		name: "readyz", method: "GET", path: "/readyz",
		want: `"status":"ready"`,
	},
	{
		name: "metrics", method: "GET", path: "/metrics",
		want: "server_requests",
	},
	{
		name: "metrics-red", method: "GET", path: "/metrics",
		want: "server_eval_latency_us_count",
	},
	{
		name: "metrics-runtime", method: "GET", path: "/metrics",
		want: "runtime_goroutines",
	},
	{
		name: "metrics-slo", method: "GET", path: "/metrics",
		want: "slo_eval_latency_burn_fast_milli",
	},
	{
		name: "slo", method: "GET", path: "/v1/slo",
		want: `"enabled":true`,
	},
	{
		name: "profiles-list", method: "GET", path: "/debug/profiles",
		want: `"armed":true`,
	},
}

// lockedBuffer collects the access log for the smoke's assertions while
// still echoing it to stderr; slog handlers may be driven concurrently.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	os.Stderr.Write(p)
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runSmoke starts the service on an ephemeral port, fires the checks, and
// shuts down gracefully; any wrong status or missing substring is an
// error. Beyond the per-endpoint checks it verifies the request-scoped
// observability contract: the X-Request-Id echo, the ID's presence in the
// access log, and the /readyz drain flip.
func runSmoke(cfg server.Config) error {
	logBuf := &lockedBuffer{}
	logger, err := logctx.NewLogger(logBuf, slog.LevelDebug, "json")
	if err != nil {
		return err
	}
	cfg.Logger = logger
	// Arm the flight recorder so the trace-context checks below exercise
	// span-identity minting and a non-empty /debug/trace/export.
	trace.Arm(1 << 12)
	defer trace.Disarm()
	srv := server.New(cfg)
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	client := &http.Client{Timeout: 30 * time.Second}
	for _, c := range smokeChecks {
		var body io.Reader
		if c.body != "" {
			body = bytes.NewReader([]byte(c.body))
		}
		req, err := http.NewRequest(c.method, "http://"+addr+c.path, body)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: reading response: %w", c.name, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", c.name, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), c.want) {
			return fmt.Errorf("%s: response misses %q: %s", c.name, c.want, data)
		}
		fmt.Printf("smoke %-22s ok  %s %s\n", c.name, c.method, c.path)
	}

	// Request-ID contract: a supplied X-Request-Id is echoed on the
	// response and lands in the structured access log.
	const smokeID = "smoke-e2e-0001"
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/decide",
		strings.NewReader(`{"domain": "eq", "sentence": "forall x. x = x"}`))
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-Id", smokeID)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("request-id check: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != smokeID {
		return fmt.Errorf("request-id echo: sent %q, response header carries %q", smokeID, got)
	}
	if !strings.Contains(logBuf.String(), smokeID) {
		return fmt.Errorf("access log does not carry the request id %q", smokeID)
	}
	fmt.Printf("smoke %-22s ok  X-Request-Id echoed and in access log\n", "request-id")

	// Trace-context contract: a caller's W3C traceparent is adopted — the
	// response echoes the same trace ID at the server's own span position
	// (a freshly minted child span ID, not the caller's) — and a malformed
	// traceparent is replaced by a fresh root rather than rejected.
	const smokeTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sentTC, ok := tracectx.Parse(smokeTP, "")
	if !ok {
		return fmt.Errorf("traceparent check: the smoke's own traceparent does not parse")
	}
	traceReq := func(tp string) (tracectx.TC, error) {
		req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/decide",
			strings.NewReader(`{"domain": "eq", "sentence": "forall x. x = x"}`))
		if err != nil {
			return tracectx.TC{}, err
		}
		req.Header.Set("traceparent", tp)
		resp, err := client.Do(req)
		if err != nil {
			return tracectx.TC{}, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		echo := resp.Header.Get("traceparent")
		tc, ok := tracectx.Parse(echo, "")
		if !ok {
			return tracectx.TC{}, fmt.Errorf("response traceparent %q does not parse", echo)
		}
		return tc, nil
	}
	echoTC, err := traceReq(smokeTP)
	if err != nil {
		return fmt.Errorf("traceparent check: %w", err)
	}
	if echoTC.TraceID != sentTC.TraceID {
		return fmt.Errorf("traceparent check: sent trace %s, response carries %s",
			sentTC.TraceID, echoTC.TraceID)
	}
	if echoTC.SpanID == sentTC.SpanID {
		return fmt.Errorf("traceparent check: response span position %s is the caller's, not a minted child", echoTC.SpanID)
	}
	freshTC, err := traceReq("garbage-not-a-traceparent")
	if err != nil {
		return fmt.Errorf("traceparent check (malformed): %w", err)
	}
	if freshTC.TraceID == sentTC.TraceID || freshTC.TraceID.IsZero() {
		return fmt.Errorf("traceparent check (malformed): want a fresh root, got trace %s", freshTC.TraceID)
	}
	fmt.Printf("smoke %-22s ok  trace adopted with child span; malformed re-rooted\n", "traceparent")

	// Trace-export contract: the ring serves as OTLP/JSON resource spans
	// carrying the smoke's trace ID, and as a stitchable JSONL dump with
	// the metadata header line.
	for _, check := range []struct{ query, want string }{
		{"", `"resourceSpans"`},
		{"", `"` + echoTC.TraceID.String() + `"`},
		{"?format=jsonl", `"finq_trace"`},
	} {
		resp, err := client.Get("http://" + addr + "/debug/trace/export" + check.query)
		if err != nil {
			return fmt.Errorf("trace-export check: %w", err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return fmt.Errorf("trace-export check (%s): status %d err %v", check.query, resp.StatusCode, err)
		}
		if !strings.Contains(string(data), check.want) {
			return fmt.Errorf("trace-export check (%s): response misses %q", check.query, check.want)
		}
	}
	fmt.Printf("smoke %-22s ok  OTLP carries the smoke trace; JSONL has the meta header\n", "trace-export")

	// From here on the typed client package drives the checks — the same
	// client cmd/finqload and the server tests use — so the smoke also
	// exercises the Go surface of the v1 API, not only the raw wire.
	sctx := context.Background()
	api := apiclient.New("http://"+addr, nil)

	// Per-query stats contract: the smoke eval above was folded into the
	// qstats registry, so /v1/stats/queries must list its canonical key
	// with a nonzero eval count.
	evalFormula, err := finq.MustLookup("eq").Parse("exists y. F(x, y)")
	if err != nil {
		return fmt.Errorf("qstats check: parsing the smoke formula: %w", err)
	}
	wantKey := evalFormula.CanonicalKey()
	stats, err := api.QueryStats(sctx, "count", 0)
	if err != nil {
		return fmt.Errorf("qstats check: %w", err)
	}
	var entries []struct {
		Key   string `json:"key"`
		Evals int64  `json:"evals"`
	}
	if err := json.Unmarshal(stats.Queries, &entries); err != nil {
		return fmt.Errorf("qstats check: decoding entries: %w", err)
	}
	found := false
	for _, q := range entries {
		if q.Key == wantKey && q.Evals >= 1 {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("qstats check: /v1/stats/queries misses the smoke query key %q with evals >= 1: %s", wantKey, stats.Queries)
	}
	fmt.Printf("smoke %-22s ok  smoke query present with evals >= 1\n", "stats-queries")

	// Version contract: /v1/version serves exactly the build line the
	// binary itself reports, so captured evidence pins to this build.
	ver, err := api.Version(sctx)
	if err != nil {
		return fmt.Errorf("version check: %w", err)
	}
	if ver.Line != finq.Version() || ver.Version == "" {
		return fmt.Errorf("version check: served %q, binary reports %q", ver.Line, finq.Version())
	}
	fmt.Printf("smoke %-22s ok  %s\n", "version", ver.Line)

	// Batch contract: one request evaluates several queries against one
	// shared state; a failing item is scoped to that item.
	batch, err := api.EvalBatch(sctx, apiv1.BatchRequest{
		Domain: "presburger",
		State:  json.RawMessage(`{"relations": {"R": [["1"], ["3"]]}}`),
		Items: []apiv1.BatchItem{
			{Formula: "R(x)"},
			{Formula: "((("},
			{Formula: "exists x. R(x)"},
		},
	})
	if err != nil {
		return fmt.Errorf("batch check: %w", err)
	}
	if len(batch.Items) != 3 || batch.Stopped != "" {
		return fmt.Errorf("batch check: unexpected shape: %+v", batch)
	}
	if r := batch.Items[0].Result; r == nil || r.Answer == nil || len(r.Answer.Rows) != 2 {
		return fmt.Errorf("batch check: item 0 should carry 2 rows: %+v", batch.Items[0])
	}
	if e := batch.Items[1].Error; e == nil || e.Code != apiv1.CodeBadRequest {
		return fmt.Errorf("batch check: bad-formula item should be a scoped %s: %+v", apiv1.CodeBadRequest, batch.Items[1])
	}
	if r := batch.Items[2].Result; r == nil || r.Answer == nil || r.Answer.Truth == nil || !*r.Answer.Truth {
		return fmt.Errorf("batch check: sentence item should be true: %+v", batch.Items[2])
	}
	fmt.Printf("smoke %-22s ok  3 items, shared state, scoped error\n", "eval-batch")

	// Streaming contract: rows of an enumeration arrive one by one in both
	// encodings, with the completion verdict on the trailer.
	for _, enc := range []string{apiv1.ContentTypeNDJSON, apiv1.ContentTypeFrames} {
		streamed := 0
		sres, err := api.EvalStream(sctx, apiv1.EvalRequest{
			Domain:  "presburger",
			Formula: "R(x)",
			State:   json.RawMessage(`{"relations": {"R": [["1"], ["3"]]}}`),
			Mode:    "enumerate",
			Budget:  &apiv1.Budget{Rows: 16, Probe: 1 << 20},
		}, enc, func(row []string) error {
			streamed++
			return nil
		})
		if err != nil {
			return fmt.Errorf("stream check (%s): %w", enc, err)
		}
		if streamed != 2 || !sres.Trailer.Complete || sres.Trailer.Rows != 2 {
			return fmt.Errorf("stream check (%s): %d rows, trailer %+v", enc, streamed, sres.Trailer)
		}
		fmt.Printf("smoke %-22s ok  2 rows then complete trailer (%s)\n", "eval-stream", enc)
	}

	// Error-envelope contract: a failing request surfaces through the
	// client as a typed APIError with a closed-set code and a request ID.
	if _, err := api.Eval(sctx, apiv1.EvalRequest{Domain: "nope", Formula: "x = x"}); err == nil {
		return fmt.Errorf("error-envelope check: unknown domain did not fail")
	} else if ae, ok := err.(*apiclient.APIError); !ok {
		return fmt.Errorf("error-envelope check: want *apiclient.APIError, got %T: %v", err, err)
	} else if ae.Status != http.StatusBadRequest || ae.Code != apiv1.CodeBadRequest ||
		!apiv1.ValidCode(ae.Code) || ae.RequestID == "" {
		return fmt.Errorf("error-envelope check: %+v", ae)
	}
	fmt.Printf("smoke %-22s ok  typed %s with request ID\n", "error-envelope", apiv1.CodeBadRequest)

	// Profile-capture contract: an on-demand capture completes, is listed
	// on /debug/profiles, and its CPU payload downloads by id.
	resp, err = client.Post("http://"+addr+"/debug/profiles/capture?dur_ms=150", "application/json", nil)
	if err != nil {
		return fmt.Errorf("profile capture: %w", err)
	}
	capData, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("profile capture: status %d err %v: %s", resp.StatusCode, err, capData)
	}
	var cap struct {
		ID       string `json:"id"`
		CPUBytes int    `json:"cpu_bytes"`
	}
	if err := json.Unmarshal(capData, &cap); err != nil {
		return fmt.Errorf("profile capture: decoding response: %w", err)
	}
	if cap.ID == "" || cap.CPUBytes <= 0 {
		return fmt.Errorf("profile capture: empty capture: %s", capData)
	}
	resp, err = client.Get("http://" + addr + "/debug/profiles")
	if err != nil {
		return fmt.Errorf("profile list: %w", err)
	}
	listData, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(listData), cap.ID) {
		return fmt.Errorf("profile list misses %q: %s", cap.ID, listData)
	}
	resp, err = client.Get("http://" + addr + "/debug/profiles?id=" + cap.ID + "&kind=cpu")
	if err != nil {
		return fmt.Errorf("profile download: %w", err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(payload) != cap.CPUBytes {
		return fmt.Errorf("profile download: status %d err %v, %d bytes (metadata says %d)",
			resp.StatusCode, err, len(payload), cap.CPUBytes)
	}
	if _, err := prof.SampleLabels(payload); err != nil {
		return fmt.Errorf("profile download: payload is not a pprof profile: %w", err)
	}
	fmt.Printf("smoke %-22s ok  capture %s listed and downloadable (%d bytes)\n", "profile-capture", cap.ID, cap.CPUBytes)

	// Drain contract: StartDrain flips /readyz to 503 while the listener
	// still serves (a balancer stops routing, in-flight work completes);
	// /healthz stays 200 because a draining process is alive.
	srv.StartDrain()
	for _, probe := range []struct {
		path string
		code int
	}{{"/readyz", http.StatusServiceUnavailable}, {"/healthz", http.StatusOK}} {
		resp, err := client.Get("http://" + addr + probe.path)
		if err != nil {
			return fmt.Errorf("drain %s: %w", probe.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != probe.code {
			return fmt.Errorf("mid-drain %s: want %d, got %d", probe.path, probe.code, resp.StatusCode)
		}
	}
	fmt.Printf("smoke %-22s ok  /readyz 503 mid-drain, /healthz 200\n", "drain-flip")

	fmt.Printf("smoke: %d/%d endpoints ok on %s\n", len(smokeChecks), len(smokeChecks), addr)
	return nil
}
