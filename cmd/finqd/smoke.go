package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// smokeChecks drives one request per endpoint against a live server. Each
// body doubles as a tiny example of the wire format.
var smokeChecks = []struct {
	name   string
	method string
	path   string
	body   string
	want   string // substring the 200 response must contain
}{
	{
		name: "domains", method: "GET", path: "/v1/domains",
		want: `"presburger"`,
	},
	{
		name: "decide", method: "POST", path: "/v1/decide",
		body: `{"domain": "presburger", "sentence": "forall x. exists y. lt(x, y)"}`,
		want: `"truth":true`,
	},
	{
		name: "qe", method: "POST", path: "/v1/qe",
		body: `{"domain": "eq", "formula": "exists y. ~(y = x)"}`,
		want: `"formula"`,
	},
	{
		name: "eval", method: "POST", path: "/v1/eval",
		body: `{"domain": "eq",
		        "state": {"relations": {"F": [["adam", "abel"], ["adam", "cain"]]}},
		        "formula": "exists y. F(x, y)"}`,
		want: `"complete":true`,
	},
	{
		name: "eval-enumerate-partial", method: "POST", path: "/v1/eval",
		body: `{"domain": "presburger",
		        "state": {"relations": {"R": [["5"]]}},
		        "formula": "~R(x)", "mode": "enumerate",
		        "budget": {"rows": 4, "probe": 4096}}`,
		want: `"stopped":"budget"`,
	},
	{
		name: "safety", method: "POST", path: "/v1/safety",
		body: `{"domain": "eq",
		        "state": {"relations": {"F": [["adam", "abel"]]}},
		        "formula": "exists y. F(x, y)"}`,
		want: `"verdict":"holds"`,
	},
	{
		name: "metrics", method: "GET", path: "/metrics",
		want: "server_requests",
	},
}

// runSmoke starts the service on an ephemeral port, fires the checks, and
// shuts down gracefully; any wrong status or missing substring is an error.
func runSmoke(cfg server.Config) error {
	srv := server.New(cfg)
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	client := &http.Client{Timeout: 30 * time.Second}
	for _, c := range smokeChecks {
		var body io.Reader
		if c.body != "" {
			body = bytes.NewReader([]byte(c.body))
		}
		req, err := http.NewRequest(c.method, "http://"+addr+c.path, body)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: reading response: %w", c.name, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", c.name, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), c.want) {
			return fmt.Errorf("%s: response misses %q: %s", c.name, c.want, data)
		}
		fmt.Printf("smoke %-22s ok  %s %s\n", c.name, c.method, c.path)
	}
	fmt.Printf("smoke: %d/%d endpoints ok on %s\n", len(smokeChecks), len(smokeChecks), addr)
	return nil
}
