// Command finqd serves the library over HTTP/JSON: evaluation, decision,
// quantifier elimination, and relative safety as a long-running service
// with bounded concurrency and cancellable, request-scoped evaluation.
//
// Usage:
//
//	finqd [-addr host:port] [-workers n] [-queue n]
//	      [-timeout-eval d] [-timeout-decide d] [-max-body bytes]
//	      [-slow d] [-drain-grace d]
//	      [-slo-latency d] [-slo-target f] [-slo-error-target f]
//	      [-slo-tick d] [-slo-fast d] [-slo-slow d] [-slo-burn f]
//	      [-profile-capture[=false]] [-profile-dur d] [-profile-ring n]
//	      [-profile-cooldown d]
//	finqd -smoke
//
// The global flags (-debug-addr, -trace-out, -cache, -log-level,
// -log-format) apply as in the other tools; /metrics, /debug/obs, and
// /debug/pprof/ are also served by finqd itself, so -debug-addr is only
// needed to put them on a separate port. The access log (one structured
// line per request, carrying the request's X-Request-Id) goes to stderr
// through the shared slog setup, so `finq eval` and finqd emit uniform
// logs.
//
// SIGINT or SIGTERM begins a graceful shutdown: /readyz flips to 503, the
// -drain-grace window lets balancers stop routing, then the listener
// closes and in-flight requests run to completion (bounded by their own
// deadlines). Requests slower than -slow — plus errored requests and the
// first request of each distinct query — get their span subtree captured
// from the flight recorder into the tail sampler: /debug/slow lists the
// captures, /debug/slow?id=<request id> retrieves one. Per-query
// aggregates (latency, selectivity, cache hits, keyed by the formula's
// canonical key) are served on /v1/stats/queries (JSON) and
// /debug/queries (text table).
//
// The SLO burn-rate engine watches the pooled endpoints (eval, decide,
// qe, safety): each gets a latency objective (-slo-latency at -slo-target,
// bucket-rounded) and an error objective (-slo-error-target), sampled
// every -slo-tick over the -slo-fast and -slo-slow windows. When the fast
// burn crosses -slo-burn with the slow window confirming, the trip is
// logged, exported on /metrics and GET /v1/slo, and — unless
// -profile-capture=false — a bounded CPU+heap profile pair is captured
// into a ring of -profile-ring, cross-linked to the tripping request and
// its tail-sampler trace. GET /debug/profiles lists the captures;
// ?id=&kind=cpu|heap downloads raw pprof bytes; POST
// /debug/profiles/capture runs one on demand. -slo-latency 0 disables the
// engine entirely. GET /v1/version reports the build identity so captured
// evidence pins to the binary that produced it.
//
// -smoke starts the server on an ephemeral port, exercises every endpoint
// once in-process — including /healthz, /readyz and its drain flip, the
// X-Request-Id echo, the access log, and the smoke query's presence on
// /v1/stats/queries — verifies the service metrics appear on /metrics,
// and exits nonzero on any failure. It exists for CI and
// `make serve-smoke`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/server"
)

func main() {
	args, finish, err := cliutil.Setup("finqd", os.Args[1:], true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finqd:", err)
		os.Exit(1)
	}
	defer finish()
	fs := flag.NewFlagSet("finqd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	workers := fs.Int("workers", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queued requests beyond the workers (0 = 2x workers)")
	timeoutEval := fs.Duration("timeout-eval", 30*time.Second, "per-request deadline for /v1/eval")
	timeoutDecide := fs.Duration("timeout-decide", 10*time.Second, "per-request deadline for /v1/decide, /v1/qe, /v1/safety")
	maxBody := fs.Int64("max-body", 1<<20, "request body limit in bytes")
	slow := fs.Duration("slow", time.Second, "capture the span subtree of requests at least this slow")
	drainGrace := fs.Duration("drain-grace", 500*time.Millisecond, "wait between flipping /readyz and closing the listener on shutdown")
	sloLatency := fs.Duration("slo-latency", time.Second, "latency SLO threshold per pooled endpoint (0 disables the SLO engine)")
	sloTarget := fs.Float64("slo-target", 0.99, "fraction of requests that must meet -slo-latency")
	sloErrorTarget := fs.Float64("slo-error-target", 0.999, "fraction of requests that must not error")
	sloTick := fs.Duration("slo-tick", 10*time.Second, "SLO burn-rate sampling period")
	sloFast := fs.Duration("slo-fast", time.Minute, "fast SLO burn window")
	sloSlow := fs.Duration("slo-slow", 10*time.Minute, "slow SLO burn window")
	sloBurn := fs.Float64("slo-burn", 8, "fast-window burn rate that trips a capture (slow window confirms at half)")
	profCapture := fs.Bool("profile-capture", true, "capture a CPU+heap profile pair on SLO trips")
	profDur := fs.Duration("profile-dur", 2*time.Second, "CPU window of each triggered profile capture")
	profRing := fs.Int("profile-ring", 8, "profile captures retained before the oldest is evicted")
	profCooldown := fs.Duration("profile-cooldown", 5*time.Minute, "suppress repeat captures for one trigger reason this long")
	service := fs.String("service", "finqd", "service name stamped on exported trace resources (see /debug/trace/export)")
	smoke := fs.Bool("smoke", false, "start on an ephemeral port, exercise every endpoint once, exit")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := server.Config{
		Addr:                   *addr,
		ServiceName:            *service,
		Workers:                *workers,
		QueueDepth:             *queue,
		EvalTimeout:            *timeoutEval,
		DecideTimeout:          *timeoutDecide,
		MaxBody:                *maxBody,
		SlowRequest:            *slow,
		DrainGrace:             *drainGrace,
		SLOLatency:             *sloLatency,
		SLOLatencyTarget:       *sloTarget,
		SLOErrorTarget:         *sloErrorTarget,
		SLOTick:                *sloTick,
		SLOFastWindow:          *sloFast,
		SLOSlowWindow:          *sloSlow,
		SLOTripBurn:            *sloBurn,
		ProfileCaptureDisarmed: !*profCapture,
		ProfileCPUDuration:     *profDur,
		ProfileRing:            *profRing,
		ProfileCooldown:        *profCooldown,
	}
	if *smoke {
		cfg.Addr = "127.0.0.1:0"
		cfg.DrainGrace = 0 // the smoke drives the drain flip itself
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "finqd: smoke:", err)
			finish()
			os.Exit(1)
		}
		return
	}
	if err := serve(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "finqd:", err)
		finish()
		os.Exit(1)
	}
}

func serve(cfg server.Config) error {
	srv := server.New(cfg)
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "finqd: serving on http://%s (POST /v1/eval /v1/decide /v1/qe /v1/safety, GET /v1/domains /healthz /readyz /metrics)\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "finqd: shutting down: /readyz now 503, draining in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
