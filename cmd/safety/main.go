// Command safety exercises the paper's safety machinery: relative safety
// of a query in a state (decidable for the positive domains, budgeted for
// the trace domain), the Theorem 3.3 halting reduction, and Theorem 3.1
// totality verification.
//
// Usage:
//
//	safety relative -domain <name> -state file.json "<formula>"
//	safety halting  -machine "<word>" -input <w>
//	safety totality -machine "<word>" -candidate "<formula>"
package main

import (
	"flag"
	"fmt"
	"os"

	finq "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	args, finish, err := cliutil.Setup("safety", os.Args[1:], true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safety:", err)
		os.Exit(1)
	}
	defer finish()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "version", "-version", "--version":
		fmt.Println(finq.Version())
		return
	case "relative":
		err = runRelative(args[1:])
	case "halting":
		err = runHalting(args[1:])
	case "totality":
		err = runTotality(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "safety:", err)
		finish()
		os.Exit(1)
	}
	// Exit report: verdict counts, simulation steps, QE volume.
	obs.Take().WriteSummary(os.Stderr)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  safety relative -domain <name> [-state file.json] "<formula>"
  safety halting  -machine "<word>" -input <w>
  safety totality -machine "<word>" -candidate "<formula>"
  safety version

global flags:
  -debug-addr <host:port>  serve /debug/obs, /metrics, /debug/vars, /debug/pprof/
  -trace-out <file>        record execution and write a Chrome trace on exit
  -log-level <level>       debug|info|warn|error for structured logs (default info)
  -log-format <fmt>        text|json log output (default text)
  -cache[=on|off]          memoize decision-procedure calls (default on)

a metrics summary (verdicts, simulation steps) is printed to stderr on exit`)
}

func runRelative(args []string) error {
	fs := flag.NewFlagSet("relative", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	st := finq.NewState(finq.MustScheme(map[string]int{}))
	if *statePath != "" {
		data, err := os.ReadFile(*statePath)
		if err != nil {
			return err
		}
		st, err = finq.ParseState(d, data)
		if err != nil {
			return err
		}
	}
	v, err := finq.RelativeSafety(d, st, f)
	if err != nil {
		return err
	}
	switch v {
	case finq.Holds:
		fmt.Println("finite in this state")
	case finq.Fails:
		fmt.Println("infinite in this state")
	default:
		fmt.Println("unknown (budget exhausted or query shape unrecognized — Theorem 3.3 rules out a decider)")
	}
	return nil
}

func runHalting(args []string) error {
	fs := flag.NewFlagSet("halting", flag.ContinueOnError)
	machine := fs.String("machine", "", "encoded machine word")
	input := fs.String("input", "", "input word over {1,&}")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, st, err := finq.HaltingToRelativeSafety(*machine, *input)
	if err != nil {
		return err
	}
	fmt.Printf("reduction query: %v\n", f)
	d := finq.MustLookup("traces")
	v, err := finq.RelativeSafety(d, st, f)
	if err != nil {
		return err
	}
	switch v {
	case finq.Holds:
		fmt.Println("query finite ⟺ machine halts on the input: HALTS")
	case finq.Fails:
		fmt.Println("query infinite ⟺ machine diverges on the input: DIVERGES (certified loop)")
	default:
		fmt.Println("unknown within budget — exactly the Theorem 3.3 obstruction")
	}
	return nil
}

func runTotality(args []string) error {
	fs := flag.NewFlagSet("totality", flag.ContinueOnError)
	machine := fs.String("machine", "", "encoded machine word")
	candidate := fs.String("candidate", "", "candidate formula over the trace domain (uses constant c)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d := finq.MustLookup("traces")
	// "c" is the Theorem 3.1 database constant.
	cand, err := d.ParseWithConstants(*candidate, "c")
	if err != nil {
		return err
	}
	ok, err := finq.VerifyTotality(*machine, cand)
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("equivalence sentence TRUE: candidate denotes P(M,c,x) in every state;")
		fmt.Println("if the candidate is finite, the machine is certified total (Theorem 3.1)")
	} else {
		fmt.Println("equivalence sentence FALSE: candidate does not denote this machine's totality query")
	}
	return nil
}
