// Command qe performs quantifier elimination over the library's decidable
// domains and prints the quantifier-free result — the engine behind every
// decision procedure in the paper (Presburger/Cooper for N< and its
// extensions, Mal'cev for N', the Reach Theory of Traces for T).
//
// Usage:
//
//	qe -domain <name> "<formula>"
package main

import (
	"flag"
	"fmt"
	"os"

	finq "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

// finish flushes the trace file; fail must call it because os.Exit skips
// deferred calls.
var finish = func() {}

func main() {
	rest, fin, err := cliutil.Setup("qe", os.Args[1:], false)
	if err != nil {
		fail(err)
	}
	finish = fin
	defer finish()
	fs := flag.NewFlagSet("qe", flag.ExitOnError)
	domainName := fs.String("domain", "presburger", "domain name (eq, nless, presburger, nsucc, traces)")
	version := fs.Bool("version", false, "print version and exit")
	stats := fs.Bool("stats", false, "print a metrics summary (QE passes, formula growth) to stderr on exit")
	fs.Parse(rest)
	if *version {
		fmt.Println(finq.Version())
		return
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: qe [-version] [-stats] [-debug-addr <host:port>] [-trace-out <file>] [-cache[=on|off]] [-log-level <l>] [-log-format text|json] -domain <name> "<formula>"`)
		os.Exit(2)
	}
	if *stats {
		// Take the snapshot inside the closure: a plain
		// `defer obs.Take().WriteSummary(...)` would snapshot now,
		// before any elimination has run.
		defer func() { obs.Take().WriteSummary(os.Stderr) }()
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		fail(err)
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	g, err := finq.Eliminate(d, f)
	if err != nil {
		fail(err)
	}
	fmt.Println(g)
	if g.Sentence() && g.QuantifierFree() {
		v, err := finq.Decide(d, f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("sentence value: %v\n", v)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qe:", err)
	finish()
	os.Exit(1)
}
