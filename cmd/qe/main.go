// Command qe performs quantifier elimination over the library's decidable
// domains and prints the quantifier-free result — the engine behind every
// decision procedure in the paper (Presburger/Cooper for N< and its
// extensions, Mal'cev for N', the Reach Theory of Traces for T).
//
// Usage:
//
//	qe -domain <name> "<formula>"
package main

import (
	"flag"
	"fmt"
	"os"

	finq "repro"
)

func main() {
	domainName := flag.String("domain", "presburger", "domain name (eq, nless, presburger, nsucc, traces)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: qe -domain <name> "<formula>"`)
		os.Exit(2)
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		fail(err)
	}
	f, err := d.Parse(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	g, err := finq.Eliminate(d, f)
	if err != nil {
		fail(err)
	}
	fmt.Println(g)
	if g.Sentence() && g.QuantifierFree() {
		v, err := finq.Decide(d, f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("sentence value: %v\n", v)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qe:", err)
	os.Exit(1)
}
