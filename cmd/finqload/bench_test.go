package main

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/apiv1"
	apiclient "repro/client"
	"repro/internal/server"
)

// TestWriteBenchServe measures the wire cost of serving the E1 corpus
// through finqd three ways — one query per /v1/eval request, batched via
// /v1/eval/batch, and as a streamed enumeration — and writes
// BENCH_serve.json. Two acceptance bars fail the run:
//
//  1. batched per-query throughput must be at least 5x the single-eval
//     per-query throughput (the batch amortizes the round trip, the body
//     decode, and the shared state parse), and
//  2. the first streamed row must arrive in the first half of a
//     budget-bound enumeration — rows flush while the evaluation runs,
//     not after it.
//
// Gated behind BENCH_SERVE=1 (run via `make bench-serve`) so the ordinary
// test suite stays fast.
func TestWriteBenchServe(t *testing.T) {
	if os.Getenv("BENCH_SERVE") == "" {
		t.Skip("set BENCH_SERVE=1 to measure serving throughput and write BENCH_serve.json")
	}
	corpus, err := loadCorpus("../../testdata/corpus/e1.json")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Logger: quietLogger()})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	api := apiclient.New("http://"+addr, nil)
	ctx := context.Background()

	// Interleave single/batch rounds and keep the best of each, the same
	// noise-suppression scheme BENCH_perf uses: on a single shared core the
	// closed loop measures client+server CPU together, and scheduling noise
	// between runs is well above the bar's margin.
	const (
		batchSize = 64
		rounds    = 3
	)
	var single, batch *loadResult
	for round := 0; round < rounds; round++ {
		s, err := runLoad(ctx, []*apiclient.Client{api}, corpus, loadOptions{
			Mode: "eval", Workers: 4, Warmup: 300 * time.Millisecond, Duration: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := runLoad(ctx, []*apiclient.Client{api}, corpus, loadOptions{
			Mode: "batch", Batch: batchSize, Workers: 4,
			Warmup: 300 * time.Millisecond, Duration: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.Errors > 0 || b.Errors > 0 {
			t.Fatalf("round %d load errors: single %d, batch %d", round, s.Errors, b.Errors)
		}
		if single == nil || s.QueriesPerSec > single.QueriesPerSec {
			single = s
		}
		if batch == nil || b.QueriesPerSec > batch.QueriesPerSec {
			batch = b
		}
	}
	speedup := batch.QueriesPerSec / single.QueriesPerSec
	t.Logf("single: %.0f queries/s (p50 %.3fms)", single.QueriesPerSec, single.P50MS)
	t.Logf("batch:  %.0f queries/s (p50 %.3fms per %d-item request)", batch.QueriesPerSec, batch.P50MS, batchSize)
	t.Logf("batch speedup per query: %.1fx", speedup)

	// Streaming: enumerate an infinite answer (~R(x)) under a row budget
	// and timestamp the first row against the whole request.
	t0 := time.Now()
	var firstRow time.Duration
	sres, err := api.EvalStream(ctx, apiv1.EvalRequest{
		Domain:  corpus.Domain,
		State:   corpus.State,
		Formula: "~R(x)",
		Mode:    "enumerate",
		Budget:  &apiv1.Budget{Rows: 64, Probe: 1 << 20},
	}, apiv1.ContentTypeNDJSON, func(row []string) error {
		if firstRow == 0 {
			firstRow = time.Since(t0)
		}
		return nil
	})
	total := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stream: first row %.3fms, trailer (%d rows, stopped %q) %.3fms",
		ms(firstRow), sres.Trailer.Rows, sres.Trailer.Stopped, ms(total))

	// Bars.
	if speedup < 5 {
		t.Errorf("batch bar: per-query throughput %.1fx single eval, want >= 5x", speedup)
	}
	if sres.Trailer.Stopped != "budget" || sres.Trailer.Rows == 0 {
		t.Errorf("stream bar: want a budget-bound enumeration with rows, got %+v", sres.Trailer)
	}
	if firstRow == 0 || firstRow > total/2 {
		t.Errorf("stream bar: first row at %.3fms of %.3fms — rows must flush while the evaluation runs", ms(firstRow), ms(total))
	}
	if t.Failed() {
		return
	}

	out := map[string]any{
		"benchmark":               "finqd wire cost on the E1 corpus: single /v1/eval vs /v1/eval/batch vs streamed enumeration",
		"corpus":                  "testdata/corpus/e1.json",
		"single":                  single,
		"batch":                   batch,
		"batch_speedup_per_query": speedup,
		"stream_first_row_ms":     ms(firstRow),
		"stream_total_ms":         ms(total),
		"stream_rows":             sres.Trailer.Rows,
		"stream_stopped":          sres.Trailer.Stopped,
		"note":                    "closed-loop workers, warmup discarded, best of 3 interleaved rounds per mode; bars: batch >= 5x single per-query throughput, first streamed row inside the first half of a budget-bound enumeration",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_serve.json")
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
