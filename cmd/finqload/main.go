// Finqload is a closed-loop load generator and soak harness for finqd.
//
// It replays a query corpus (testdata/corpus/*.json) against a running
// finqd — or against an in-process one it boots itself when -addr is
// empty — through the typed v1 client, in one of three modes:
//
//	eval    one query per POST /v1/eval request (the baseline wire cost)
//	batch   -batch queries per POST /v1/eval/batch request
//	stream  one streamed enumeration per request (NDJSON or binary frames)
//
// Workers are closed-loop: each fires its next request as soon as the
// previous one finishes, so the measured throughput is the server's
// sustainable rate at that concurrency, not an open-loop arrival fantasy.
// Samples taken during the warmup window are discarded. The summary
// reports per-request p50/p95/p99 and per-query throughput; -out writes
// the same summary as JSON (the shape embedded in BENCH_serve.json).
//
// Every synthetic request is minted a W3C trace root, so the servers
// record identity-carrying spans; with -shards N the in-process fleet is
// N finqd instances (round-robin across workers), each with its own
// flight recorder, and -trace-dir dumps each shard's ring as a JSONL
// file on exit — the inputs `finq trace stitch` merges into one
// cross-process Chrome trace.
//
// Examples:
//
//	go run ./cmd/finqload -duration 5s                    # self-hosted
//	go run ./cmd/finqload -addr 127.0.0.1:8080 -mode batch -batch 32
//	go run ./cmd/finqload -mode stream -encoding frames
//	go run ./cmd/finqload -shards 2 -trace-dir /tmp/dumps # stitchable
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/apiv1"
	apiclient "repro/client"
	"repro/internal/obs/trace"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "finqd host:port to load; empty boots an in-process finqd")
		corpus   = flag.String("corpus", "testdata/corpus/e1.json", "query corpus to replay")
		mode     = flag.String("mode", "eval", "request shape: eval, batch, or stream")
		workers  = flag.Int("workers", 4, "closed-loop worker count")
		duration = flag.Duration("duration", 5*time.Second, "measured window after warmup")
		warmup   = flag.Duration("warmup", time.Second, "warmup window; its samples are discarded")
		batch    = flag.Int("batch", 32, "queries per request in batch mode")
		encoding = flag.String("encoding", "ndjson", "stream encoding: ndjson or frames")
		out      = flag.String("out", "", "write the summary as JSON to this file")
		shards   = flag.Int("shards", 1, "in-process finqd instances to boot and round-robin (needs empty -addr)")
		traceDir = flag.String("trace-dir", "", "arm each in-process shard's flight recorder and dump JSONL traces here on exit")
	)
	flag.Parse()
	if err := run(*addr, *corpus, loadOptions{
		Mode:     *mode,
		Workers:  *workers,
		Duration: *duration,
		Warmup:   *warmup,
		Batch:    *batch,
		Encoding: *encoding,
	}, *out, *shards, *traceDir); err != nil {
		fmt.Fprintln(os.Stderr, "finqload:", err)
		os.Exit(1)
	}
}

func run(addr, corpusPath string, opts loadOptions, outPath string, shards int, traceDir string) error {
	corpus, err := loadCorpus(corpusPath)
	if err != nil {
		return err
	}
	var addrs []string
	if addr != "" {
		if shards > 1 || traceDir != "" {
			return fmt.Errorf("-shards and -trace-dir need the in-process fleet (leave -addr empty); fetch a remote ring from /debug/trace/export?format=jsonl instead")
		}
		addrs = []string{addr}
	} else {
		if shards < 1 {
			shards = 1
		}
		if traceDir != "" {
			if err := os.MkdirAll(traceDir, 0o755); err != nil {
				return err
			}
		}
		for i := 0; i < shards; i++ {
			name := fmt.Sprintf("finqd-%d", i)
			rec := trace.NewRecorder()
			if traceDir != "" {
				rec.Arm(0)
			}
			// The access log would dwarf the summary (and cost throughput) at
			// load-generator request rates; the self-hosted servers are quiet.
			srv := server.New(server.Config{
				Logger:        quietLogger(),
				ServiceName:   name,
				TraceRecorder: rec,
			})
			a, err := srv.Start()
			if err != nil {
				return fmt.Errorf("booting in-process finqd shard %d: %w", i, err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			if traceDir != "" {
				defer dumpShardTrace(traceDir, name, rec)
			}
			addrs = append(addrs, a)
			fmt.Printf("finqload: in-process %s on %s\n", name, a)
		}
	}
	if enc, err := streamEncodingFlag(opts.Encoding); err != nil {
		return err
	} else {
		opts.Encoding = enc
	}

	apis := make([]*apiclient.Client, len(addrs))
	for i, a := range addrs {
		apis[i] = apiclient.New("http://"+a, nil)
	}
	res, err := runLoad(context.Background(), apis, corpus, opts)
	if err != nil {
		return err
	}
	fmt.Printf("finqload %s: %d requests, %d queries, %d errors in %.2fs\n",
		res.Mode, res.Requests, res.Queries, res.Errors, res.ElapsedSec)
	fmt.Printf("  %.0f req/s, %.0f queries/s\n", res.RequestsPerSec, res.QueriesPerSec)
	fmt.Printf("  request latency p50 %.3fms p95 %.3fms p99 %.3fms\n", res.P50MS, res.P95MS, res.P99MS)
	if res.Mode == "stream" {
		fmt.Printf("  %d rows streamed\n", res.RowsStreamed)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// dumpShardTrace disarms one shard's flight recorder and writes its ring
// as a JSONL dump (metadata header line first) into dir — the per-process
// input shape `finq trace stitch` merges.
func dumpShardTrace(dir, name string, rec *trace.Recorder) {
	rec.Disarm()
	path := filepath.Join(dir, name+".trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finqload: trace dump %s: %v\n", name, err)
		return
	}
	defer f.Close()
	events := rec.Dump()
	meta := trace.Meta{Process: name, EpochUnixNano: rec.Epoch().UnixNano()}
	if err := trace.WriteJSONLMeta(f, meta, events); err != nil {
		fmt.Fprintf(os.Stderr, "finqload: trace dump %s: %v\n", name, err)
		return
	}
	fmt.Printf("finqload: wrote %d trace events (%d dropped) to %s\n",
		len(events), rec.Dropped(), path)
}

// quietLogger drops all log output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// streamEncodingFlag maps the -encoding spelling to the wire content type.
func streamEncodingFlag(enc string) (string, error) {
	switch enc {
	case "ndjson", "", apiv1.ContentTypeNDJSON:
		return apiv1.ContentTypeNDJSON, nil
	case "frames", apiv1.ContentTypeFrames:
		return apiv1.ContentTypeFrames, nil
	default:
		return "", fmt.Errorf("unknown -encoding %q (want ndjson or frames)", enc)
	}
}
