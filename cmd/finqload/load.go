package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/apiv1"
	apiclient "repro/client"
	"repro/internal/obs/tracectx"
)

// corpusDoc is a replayable query corpus: one shared state and a list of
// queries, cycled round-robin by the workers. The on-disk shape mirrors
// the v1 wire types so a corpus entry is exactly a /v1/eval body minus
// the domain/state it shares with its neighbors.
type corpusDoc struct {
	Description string          `json:"description,omitempty"`
	Domain      string          `json:"domain"`
	State       json.RawMessage `json:"state"`
	Queries     []corpusQuery   `json:"queries"`
}

// corpusQuery is one replayable query.
type corpusQuery struct {
	Formula string        `json:"formula"`
	Mode    string        `json:"mode,omitempty"`
	Budget  *apiv1.Budget `json:"budget,omitempty"`
}

// loadCorpus reads and validates a corpus file.
func loadCorpus(path string) (*corpusDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c corpusDoc
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("corpus %s: %w", path, err)
	}
	if c.Domain == "" || len(c.Queries) == 0 {
		return nil, fmt.Errorf("corpus %s: needs a domain and at least one query", path)
	}
	return &c, nil
}

// loadOptions configures one closed-loop run.
type loadOptions struct {
	// Mode is the request shape: "eval", "batch", or "stream".
	Mode string
	// Workers is the closed-loop concurrency.
	Workers int
	// Warmup discards samples taken before it elapses; Duration is the
	// measured window after it.
	Warmup, Duration time.Duration
	// Batch is the queries-per-request in batch mode.
	Batch int
	// Encoding is the stream content type (batch/eval ignore it).
	Encoding string
}

// loadResult is one run's summary — also the JSON shape -out writes and
// BENCH_serve.json embeds.
type loadResult struct {
	Mode           string  `json:"mode"`
	Workers        int     `json:"workers"`
	BatchSize      int     `json:"batch_size,omitempty"`
	Requests       int64   `json:"requests"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	RowsStreamed   int64   `json:"rows_streamed,omitempty"`
}

// runLoad drives the closed loop: Workers goroutines each fire their next
// request the moment the previous one returns, cycling the corpus via a
// shared counter — and, with several clients, round-robin across the
// shard fleet — until warmup+duration elapses. Only samples completed
// after the warmup window count. Each request carries a freshly minted
// trace root, so the servers' flight recorders attribute every span to a
// distinct distributed trace.
func runLoad(ctx context.Context, apis []*apiclient.Client, corpus *corpusDoc, opts loadOptions) (*loadResult, error) {
	if len(apis) == 0 {
		return nil, fmt.Errorf("runLoad: no clients")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Mode == "batch" && opts.Batch <= 0 {
		opts.Batch = 1
	}
	start := time.Now()
	warmEnd := start.Add(opts.Warmup)
	deadline := start.Add(opts.Warmup + opts.Duration)

	var next atomic.Int64
	type sample struct {
		latency time.Duration
		queries int
		rows    int64
		err     bool
	}
	results := make([][]sample, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []sample
			for time.Now().Before(deadline) {
				i := int(next.Add(1) - 1)
				api := apis[i%len(apis)]
				// One root per synthetic request: the client injects it as
				// the traceparent header, the server parents under it.
				rctx := tracectx.With(ctx, tracectx.NewRoot())
				s := sample{queries: 1}
				t0 := time.Now()
				switch opts.Mode {
				case "eval":
					q := corpus.Queries[i%len(corpus.Queries)]
					_, err := api.Eval(rctx, apiv1.EvalRequest{
						Domain: corpus.Domain, State: corpus.State,
						Formula: q.Formula, Mode: q.Mode, Budget: q.Budget,
					})
					s.err = err != nil
				case "batch":
					items := make([]apiv1.BatchItem, opts.Batch)
					for j := range items {
						q := corpus.Queries[(i*opts.Batch+j)%len(corpus.Queries)]
						items[j] = apiv1.BatchItem{Formula: q.Formula, Mode: q.Mode, Budget: q.Budget}
					}
					s.queries = opts.Batch
					resp, err := api.EvalBatch(rctx, apiv1.BatchRequest{
						Domain: corpus.Domain, State: corpus.State, Items: items,
					})
					if err != nil {
						s.err = true
					} else {
						for _, it := range resp.Items {
							if it.Error != nil {
								s.err = true
							}
						}
					}
				case "stream":
					q := corpus.Queries[i%len(corpus.Queries)]
					mode := q.Mode
					if mode == "" {
						mode = "enumerate"
					}
					res, err := api.EvalStream(rctx, apiv1.EvalRequest{
						Domain: corpus.Domain, State: corpus.State,
						Formula: q.Formula, Mode: mode, Budget: q.Budget,
					}, opts.Encoding, func(row []string) error {
						s.rows++
						return nil
					})
					if err != nil {
						s.err = true
					} else {
						s.rows = res.Trailer.Rows
					}
				default:
					s.err = true
				}
				s.latency = time.Since(t0)
				if time.Now().After(warmEnd) {
					local = append(local, s)
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(warmEnd)

	res := &loadResult{Mode: opts.Mode, Workers: opts.Workers, ElapsedSec: elapsed.Seconds()}
	if opts.Mode == "batch" {
		res.BatchSize = opts.Batch
	}
	var lats []float64
	for _, local := range results {
		for _, s := range local {
			res.Requests++
			res.Queries += int64(s.queries)
			res.RowsStreamed += s.rows
			if s.err {
				res.Errors++
			}
			lats = append(lats, float64(s.latency)/float64(time.Millisecond))
		}
	}
	if res.Requests == 0 {
		return nil, fmt.Errorf("%s: no requests completed after warmup; lengthen -duration", opts.Mode)
	}
	sort.Float64s(lats)
	res.RequestsPerSec = float64(res.Requests) / elapsed.Seconds()
	res.QueriesPerSec = float64(res.Queries) / elapsed.Seconds()
	res.P50MS = percentile(lats, 0.50)
	res.P95MS = percentile(lats, 0.95)
	res.P99MS = percentile(lats, 0.99)
	return res, nil
}

// percentile reads the q-quantile from an ascending-sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
