// Command finq parses, evaluates, and analyzes relational-calculus queries
// over the library's domains.
//
// Usage:
//
//	finq domains
//	finq decide -domain <name> "<sentence>"
//	finq eval -domain <name> [-state file.json] [-mode active|enumerate] "<formula>"
//	finq translate -domain <name> -state file.json "<formula>"
//	finq saferange -state file.json "<formula>"
//
// State files are JSON: {"relations": {"F": [["adam","abel"]]},
// "constants": {"c": "1"}}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	finq "repro"
	"repro/internal/cliutil"
	"repro/internal/obs/qstats"
)

func main() {
	args, finish, err := cliutil.Setup("finq", os.Args[1:], true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finq:", err)
		os.Exit(1)
	}
	defer finish()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "version", "-version", "--version":
		fmt.Println(finq.Version())
	case "stats":
		err = runStats(args[1:])
	case "domains":
		for _, d := range finq.Domains() {
			fmt.Printf("%-12s %s\n", d.Name, d.Doc)
		}
	case "decide":
		err = runDecide(args[1:])
	case "eval":
		err = runEval(args[1:])
	case "translate":
		err = runTranslate(args[1:])
	case "saferange":
		err = runSafeRange(args[1:])
	case "algebra":
		err = runAlgebra(args[1:])
	case "repl":
		err = runREPL(args[1:])
	case "trace":
		err = runTrace(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "finq:", err)
		finish()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  finq domains
  finq decide    -domain <name> "<sentence>"
  finq eval      -domain <name> [-state file.json] [-mode active|enumerate] [-workers n] [-profile] [-json] "<formula>"
  finq translate -domain <name> -state file.json "<formula>"
  finq saferange -state file.json "<formula>"
  finq algebra   -domain <name> -state file.json "<safe-range formula>"
  finq repl      -domain <name> [-state file.json]
  finq stats     [-queries] [-by latency|count|selectivity|allocs] [-k n] [-json] [-import file] [-export file]
  finq trace     stitch [-out file] <dump.jsonl> ...
  finq version

global flags:
  -debug-addr <host:port>  serve /debug/obs, /metrics, /debug/vars, /debug/pprof/
  -trace-out <file>        record execution and write a Chrome trace on exit
  -log-level <level>       debug|info|warn|error for structured logs (default info)
  -log-format <fmt>        text|json log output (default text)
  -cache[=on|off]          memoize decision-procedure calls (default on)`)
}

// runStats prints process metrics (the default, as before) or, with
// -queries, the per-query stats registry. -import merges a saved snapshot
// into the registry first and -export writes the merged snapshot back
// out, so saved stats files can be inspected and re-saved offline:
//
//	finq stats -import run1.json -queries -by selectivity    # inspect
//	finq stats -import run1.json -export merged.json         # re-save
func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	queries := fs.Bool("queries", false, "print per-query stats instead of process metrics")
	by := fs.String("by", "latency", "order for -queries: latency, count, selectivity, or allocs")
	k := fs.Int("k", 20, "top-K entries for -queries (<= 0 for all)")
	importPath := fs.String("import", "", "merge a saved per-query stats snapshot before printing")
	exportPath := fs.String("export", "", `write the per-query stats snapshot JSON to a file ("-" for stdout)`)
	jsonOut := fs.Bool("json", false, "print -queries output as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := qstats.Default()
	if *importPath != "" {
		data, err := os.ReadFile(*importPath)
		if err != nil {
			return err
		}
		if err := reg.ImportJSON(data); err != nil {
			return err
		}
	}
	if *exportPath != "" {
		out := append(reg.JSON(), '\n')
		if *exportPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*exportPath, out, 0o644); err != nil {
			return err
		}
	}
	if *queries {
		entries, err := reg.TopK(*by, *k)
		if err != nil {
			return err
		}
		if *jsonOut {
			data, err := json.MarshalIndent(entries, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		qstats.WriteTable(os.Stdout, entries)
		return nil
	}
	if *exportPath != "" {
		return nil
	}
	os.Stdout.Write(append(finq.StatsJSON(), '\n'))
	return nil
}

func loadDomainAndFormula(fs *flag.FlagSet, args []string) (finq.DomainInfo, *finq.Formula, *flag.FlagSet, error) {
	domainName := fs.String("domain", "eq", "domain name (see `finq domains`)")
	if err := fs.Parse(args); err != nil {
		return finq.DomainInfo{}, nil, nil, err
	}
	if fs.NArg() != 1 {
		return finq.DomainInfo{}, nil, nil, fmt.Errorf("expected exactly one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return finq.DomainInfo{}, nil, nil, err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return finq.DomainInfo{}, nil, nil, err
	}
	return d, f, fs, nil
}

func loadState(d finq.DomainInfo, path string) (*finq.State, error) {
	if path == "" {
		return finq.NewState(finq.MustScheme(map[string]int{})), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return finq.ParseState(d, data)
}

func runDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ContinueOnError)
	d, f, _, err := loadDomainAndFormula(fs, args)
	if err != nil {
		return err
	}
	v, err := finq.Decide(d, f)
	if err != nil {
		return err
	}
	fmt.Println(v)
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	mode := fs.String("mode", "active", "evaluation mode: active or enumerate")
	rows := fs.Int("rows", 100, "row budget for -mode enumerate")
	workers := fs.Int("workers", 0, "fan active-domain evaluation over n workers (0 = serial)")
	profile := fs.Bool("profile", false, "print the EXPLAIN profile alongside the answer")
	jsonOut := fs.Bool("json", false, "print the result as JSON (the finqd /v1/eval wire format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	req := finq.Request{
		Domain: d.Name, State: st, Formula: f,
		Workers: *workers, Profile: *profile,
	}
	switch *mode {
	case "active":
		req.Mode = finq.ModeActive
	case "enumerate":
		budget := finq.DefaultBudget
		budget.Rows = *rows
		req.Mode, req.Budget = finq.ModeEnumerate, &budget
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	// Ctrl-C cancels the evaluation; the rows found so far still print,
	// marked partial, exactly as a finqd deadline would return them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := finq.Eval(ctx, req)
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(finq.EncodeResult(d, res), "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if res.Profile != nil {
		fmt.Print(res.Profile.Text())
	}
	ans := res.Answer
	fmt.Printf("free variables: %v\n", ans.Vars)
	for _, row := range ans.Rows.Tuples() {
		fmt.Println(" ", row)
	}
	fmt.Printf("%d rows, complete=%v\n", ans.Rows.Len(), ans.Complete)
	if res.Partial {
		fmt.Printf("partial result (stopped: %s)\n", res.Stopped)
	}
	return nil
}

func runTranslate(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	pure, err := finq.Translate(d, st, f)
	if err != nil {
		return err
	}
	fmt.Println(pure)
	return nil
}

func runSafeRange(args []string) error {
	fs := flag.NewFlagSet("saferange", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file (supplies the scheme)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	report := finq.SafeRange(st.Scheme(), f)
	if report.Safe {
		fmt.Println("safe-range (hence domain-independent and finite)")
		return nil
	}
	fmt.Printf("not safe-range; unranged variables: %v\n", report.Unranged)
	return nil
}
