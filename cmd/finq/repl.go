package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	finq "repro"
	"repro/internal/algebra"
	"repro/internal/obs/qstats"
	"repro/internal/obs/trace"
)

// runAlgebra compiles a safe-range query to a relational algebra plan,
// prints it, and evaluates it against the state.
func runAlgebra(args []string) error {
	fs := flag.NewFlagSet("algebra", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	plan, err := algebra.Compile(st.Scheme(), f)
	if err != nil {
		return err
	}
	fmt.Println("plan:", plan.String())
	table, err := plan.Eval(&algebra.Ctx{St: st, Dom: d.Domain})
	if err != nil {
		return err
	}
	fmt.Println("result:", table.String())
	return nil
}

// runREPL is an interactive session: one domain, one state, commands for
// evaluation, safety, and quantifier elimination.
func runREPL(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	fmt.Printf("finq repl — domain %s (%s)\n", d.Name, d.Doc)
	fmt.Println("commands: eval <f> | enum <f> | safety <f> | qe <f> | decide <f> | saferange <f> | state | :explain <f> | :trace on|off|dump | :stats [json] | :qstats [json] | help | quit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest := line, ""
		if i := strings.IndexByte(line, ' '); i >= 0 {
			cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		if err := replCommand(d, st, cmd, rest); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func replCommand(d finq.DomainInfo, st *finq.State, cmd, rest string) error {
	parse := func() (*finq.Formula, error) {
		if rest == "" {
			return nil, fmt.Errorf("%s needs a formula", cmd)
		}
		return d.Parse(rest)
	}
	switch cmd {
	case "quit", "exit", "q":
		return errQuit
	case "help":
		fmt.Println("eval <f>      active-domain evaluation")
		fmt.Println("enum <f>      §1.1 enumeration (complete on finite queries)")
		fmt.Println("safety <f>    relative safety in the current state")
		fmt.Println("qe <f>        quantifier elimination")
		fmt.Println("decide <f>    truth of a pure sentence")
		fmt.Println("saferange <f> syntactic range-restriction analysis")
		fmt.Println("state         print the current state")
		fmt.Println(":explain <f>  EXPLAIN profile: per-node eval counts, row counts, wall time")
		fmt.Println(":trace on|off|dump [file]  arm/disarm the flight recorder; dump writes a Chrome trace (default trace.json)")
		fmt.Println(":stats [json] session metrics (evaluation, QE, automata, TM, safety)")
		fmt.Println(":qstats [json] per-query stats of this session (latency, selectivity, cache hits)")
		return nil
	case "state":
		fmt.Print(st)
		return nil
	case ":stats", "stats":
		snap := finq.Stats()
		if rest == "json" {
			fmt.Printf("%s\n", snap.JSON())
			return nil
		}
		snap.WriteSummary(os.Stdout)
		return nil
	case ":qstats", "qstats":
		// Every eval/enum/:explain in the session has been folded into the
		// process-wide registry; show the session's queries by total latency.
		if rest == "json" {
			fmt.Printf("%s\n", qstats.Default().JSON())
			return nil
		}
		entries, err := qstats.Default().TopK(qstats.ByLatency, 0)
		if err != nil {
			return err
		}
		qstats.WriteTable(os.Stdout, entries)
		return nil
	case ":trace", "trace":
		return replTrace(rest)
	case ":explain", "explain":
		f, err := parse()
		if err != nil {
			return err
		}
		res, err := finq.Eval(context.Background(), finq.Request{
			Domain: d.Name, State: st, Formula: f, Profile: true,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Profile.Text())
		printAnswer(res.Answer)
		return nil
	case "eval":
		f, err := parse()
		if err != nil {
			return err
		}
		res, err := finq.Eval(context.Background(), finq.Request{
			Domain: d.Name, State: st, Formula: f,
		})
		if err != nil {
			return err
		}
		printAnswer(res.Answer)
		return nil
	case "enum":
		f, err := parse()
		if err != nil {
			return err
		}
		budget := finq.DefaultBudget
		res, err := finq.Eval(context.Background(), finq.Request{
			Domain: d.Name, State: st, Formula: f, Mode: finq.ModeEnumerate, Budget: &budget,
		})
		if err != nil {
			return err
		}
		printAnswer(res.Answer)
		return nil
	case "safety":
		f, err := parse()
		if err != nil {
			return err
		}
		v, err := finq.RelativeSafety(d, st, f)
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil
	case "qe":
		f, err := parse()
		if err != nil {
			return err
		}
		g, err := finq.Eliminate(d, f)
		if err != nil {
			return err
		}
		fmt.Println(g)
		return nil
	case "decide":
		f, err := parse()
		if err != nil {
			return err
		}
		v, err := finq.Decide(d, f)
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil
	case "saferange":
		f, err := parse()
		if err != nil {
			return err
		}
		r := finq.SafeRange(st.Scheme(), f)
		if r.Safe {
			fmt.Println("safe-range")
		} else {
			fmt.Println("not safe-range; unranged:", r.Unranged)
		}
		return nil
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

// replTrace implements :trace — arming, disarming, and dumping the flight
// recorder from inside a session.
func replTrace(rest string) error {
	cmd, arg := rest, ""
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		cmd, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	switch cmd {
	case "on":
		trace.Arm(0)
		fmt.Println("tracing armed (ring capacity", trace.DefaultCapacity, "events)")
		return nil
	case "off":
		trace.Disarm()
		fmt.Printf("tracing disarmed; %d events held (%d dropped) — :trace dump to export\n",
			trace.Len(), trace.Dropped())
		return nil
	case "dump":
		if arg == "" {
			arg = "trace.json"
		}
		f, err := os.Create(arg)
		if err != nil {
			return err
		}
		defer f.Close()
		events := trace.Dump()
		if err := trace.WriteChrome(f, events); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s — load in Perfetto or chrome://tracing\n", len(events), arg)
		return nil
	case "":
		state := "disarmed"
		if trace.Armed() {
			state = "armed"
		}
		fmt.Printf("tracing %s; %d events held, %d dropped\n", state, trace.Len(), trace.Dropped())
		return nil
	}
	return fmt.Errorf(":trace takes on, off, or dump [file]")
}

func printAnswer(ans *finq.Answer) {
	for _, row := range ans.Rows.Tuples() {
		fmt.Println(" ", row)
	}
	fmt.Printf("%d rows, complete=%v\n", ans.Rows.Len(), ans.Complete)
}
