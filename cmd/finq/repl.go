package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	finq "repro"
	"repro/internal/algebra"
)

// runAlgebra compiles a safe-range query to a relational algebra plan,
// prints it, and evaluates it against the state.
func runAlgebra(args []string) error {
	fs := flag.NewFlagSet("algebra", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one formula argument")
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	f, err := d.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	plan, err := algebra.Compile(st.Scheme(), f)
	if err != nil {
		return err
	}
	fmt.Println("plan:", plan.String())
	table, err := plan.Eval(&algebra.Ctx{St: st, Dom: d.Domain})
	if err != nil {
		return err
	}
	fmt.Println("result:", table.String())
	return nil
}

// runREPL is an interactive session: one domain, one state, commands for
// evaluation, safety, and quantifier elimination.
func runREPL(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ContinueOnError)
	domainName := fs.String("domain", "eq", "domain name")
	statePath := fs.String("state", "", "state JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := finq.Lookup(*domainName)
	if err != nil {
		return err
	}
	st, err := loadState(d, *statePath)
	if err != nil {
		return err
	}
	fmt.Printf("finq repl — domain %s (%s)\n", d.Name, d.Doc)
	fmt.Println("commands: eval <f> | enum <f> | safety <f> | qe <f> | decide <f> | saferange <f> | state | :stats [json] | help | quit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest := line, ""
		if i := strings.IndexByte(line, ' '); i >= 0 {
			cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		if err := replCommand(d, st, cmd, rest); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func replCommand(d finq.DomainInfo, st *finq.State, cmd, rest string) error {
	parse := func() (*finq.Formula, error) {
		if rest == "" {
			return nil, fmt.Errorf("%s needs a formula", cmd)
		}
		return d.Parse(rest)
	}
	switch cmd {
	case "quit", "exit", "q":
		return errQuit
	case "help":
		fmt.Println("eval <f>      active-domain evaluation")
		fmt.Println("enum <f>      §1.1 enumeration (complete on finite queries)")
		fmt.Println("safety <f>    relative safety in the current state")
		fmt.Println("qe <f>        quantifier elimination")
		fmt.Println("decide <f>    truth of a pure sentence")
		fmt.Println("saferange <f> syntactic range-restriction analysis")
		fmt.Println("state         print the current state")
		fmt.Println(":stats [json] session metrics (evaluation, QE, automata, TM, safety)")
		return nil
	case "state":
		fmt.Print(st)
		return nil
	case ":stats", "stats":
		snap := finq.Stats()
		if rest == "json" {
			fmt.Printf("%s\n", snap.JSON())
			return nil
		}
		snap.WriteSummary(os.Stdout)
		return nil
	case "eval":
		f, err := parse()
		if err != nil {
			return err
		}
		ans, err := finq.EvalActive(d, st, f)
		if err != nil {
			return err
		}
		printAnswer(ans)
		return nil
	case "enum":
		f, err := parse()
		if err != nil {
			return err
		}
		ans, err := finq.Enumerate(d, st, f, finq.DefaultBudget)
		if err != nil {
			return err
		}
		printAnswer(ans)
		return nil
	case "safety":
		f, err := parse()
		if err != nil {
			return err
		}
		v, err := finq.RelativeSafety(d, st, f)
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil
	case "qe":
		f, err := parse()
		if err != nil {
			return err
		}
		g, err := finq.Eliminate(d, f)
		if err != nil {
			return err
		}
		fmt.Println(g)
		return nil
	case "decide":
		f, err := parse()
		if err != nil {
			return err
		}
		v, err := finq.Decide(d, f)
		if err != nil {
			return err
		}
		fmt.Println(v)
		return nil
	case "saferange":
		f, err := parse()
		if err != nil {
			return err
		}
		r := finq.SafeRange(st.Scheme(), f)
		if r.Safe {
			fmt.Println("safe-range")
		} else {
			fmt.Println("not safe-range; unranged:", r.Unranged)
		}
		return nil
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

func printAnswer(ans *finq.Answer) {
	for _, row := range ans.Rows.Tuples() {
		fmt.Println(" ", row)
	}
	fmt.Printf("%d rows, complete=%v\n", ans.Rows.Len(), ans.Complete)
}
