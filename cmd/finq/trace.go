package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs/trace"
)

// runTrace dispatches the `finq trace` verbs. The only verb today is
// stitch, which merges per-process flight-recorder dumps into one
// Chrome trace:
//
//	finq trace stitch -out merged.json shard-0.jsonl shard-1.jsonl
//
// Each input is a JSONL dump as written by ?format=jsonl on
// /debug/trace/export or by finqload -trace-dir: a metadata header line
// ({"finq_trace":1, "process":..., "epoch_unix_ns":...}) followed by one
// event per line. Stitching assigns each dump its own process lane,
// aligns timestamps onto the earliest epoch, and draws flow arrows where
// a span in one process parents a span in another — so a request
// forwarded between two finqd instances renders as one connected tree.
func runTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: finq trace stitch [-out file] <dump.jsonl> ...")
	}
	switch args[0] {
	case "stitch":
		return runTraceStitch(args[1:])
	default:
		return fmt.Errorf("unknown trace verb %q (want stitch)", args[0])
	}
}

func runTraceStitch(args []string) error {
	fs := flag.NewFlagSet("trace stitch", flag.ContinueOnError)
	out := fs.String("out", "stitched.trace.json", `merged Chrome trace output path ("-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("trace stitch: need at least one JSONL dump to stitch")
	}
	var dumps []trace.ProcessDump
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		meta, events, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("trace stitch: %s: %w", path, err)
		}
		name := meta.Process
		if name == "" {
			// An anonymous dump is labeled by its file name so the lane is
			// still recognizable in the viewer.
			name = filepath.Base(path)
		}
		dumps = append(dumps, trace.ProcessDump{Name: name, Meta: meta, Events: events})
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	stats, err := trace.Stitch(w, dumps)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"finq trace stitch: %d processes, %d events, %d traces, %d cross-process edges",
		stats.Processes, stats.Events, stats.Traces, stats.CrossEdges)
	if *out != "-" {
		fmt.Fprintf(os.Stderr, " -> %s", *out)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
