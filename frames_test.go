package finq

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestFrameRoundTrip: frames written with the Append helpers read back
// intact through ReadFrame, in order, with a clean EOF at the boundary.
func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, FrameHeader, []byte(`{"vars":["x","y"]}`))
	rows := [][]string{
		{"0", "1"},
		{"", "a long constant name to cross the single-byte varint boundary: " + strings.Repeat("ab", 100)},
		{},
	}
	for _, r := range rows {
		buf = AppendRowFrame(buf, r)
	}
	buf = AppendFrame(buf, FrameTrailer, []byte(`{"rows":3,"complete":true}`))

	r := bufio.NewReader(bytes.NewReader(buf))
	typ, payload, err := ReadFrame(r)
	if err != nil || typ != FrameHeader || string(payload) != `{"vars":["x","y"]}` {
		t.Fatalf("header frame: %q %q %v", typ, payload, err)
	}
	for i, want := range rows {
		typ, payload, err := ReadFrame(r)
		if err != nil || typ != FrameRow {
			t.Fatalf("row frame %d: %q %v", i, typ, err)
		}
		cells, err := DecodeRowPayload(payload)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		// Round-tripping normalizes nil/empty; compare contents.
		if len(cells) != len(want) {
			t.Fatalf("row %d: %v != %v", i, cells, want)
		}
		for j := range want {
			if cells[j] != want[j] {
				t.Fatalf("row %d cell %d: %q != %q", i, j, cells[j], want[j])
			}
		}
	}
	typ, payload, err = ReadFrame(r)
	if err != nil || typ != FrameTrailer || string(payload) != `{"rows":3,"complete":true}` {
		t.Fatalf("trailer frame: %q %q %v", typ, payload, err)
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want clean EOF at the boundary, got %v", err)
	}
}

// TestFrameTruncation: EOF inside a frame is ErrUnexpectedEOF, never a
// silent short read.
func TestFrameTruncation(t *testing.T) {
	full := AppendRowFrame(nil, []string{"hello", "world"})
	for cut := 1; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := ReadFrame(r); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// TestFrameOversized: a declared payload length past MaxFramePayload is
// rejected before any allocation.
func TestFrameOversized(t *testing.T) {
	buf := []byte{FrameRow}
	buf = binary.AppendUvarint(buf, MaxFramePayload+1)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestDecodeRowPayloadCorrupt: malformed row payloads error instead of
// panicking or fabricating cells.
func TestDecodeRowPayloadCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"absurd count":   binary.AppendUvarint(nil, 1<<40),
		"cell too long":  append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 100), 'x'),
		"trailing bytes": append(AppendRowFramePayload(t, []string{"a"}), 0xff),
	}
	for name, payload := range cases {
		if _, err := DecodeRowPayload(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// AppendRowFramePayload extracts just the payload of a row frame, for
// corrupting in tests.
func AppendRowFramePayload(t *testing.T, cells []string) []byte {
	t.Helper()
	full := AppendRowFrame(nil, cells)
	r := bufio.NewReader(bytes.NewReader(full))
	_, payload, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestOnRowStreamsDuringEval: Request.OnRow sees every row before Eval
// returns, and returning ErrClientGone stops the enumeration with the
// rows so far as a partial "client-gone" result.
func TestOnRowStreamsDuringEval(t *testing.T) {
	d := MustLookup("presburger")
	st := NewState(MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", Nat(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("R", Nat(3)); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("R(x)")
	if err != nil {
		t.Fatal(err)
	}

	var seen [][]string
	res, err := Eval(context.Background(), Request{
		Domain: "presburger", State: st, Formula: f, Mode: ModeEnumerate,
		Budget: &EnumerationBudget{Rows: 16, Probe: 1 << 20},
		OnRow: func(vars []string, row Tuple) error {
			if !reflect.DeepEqual(vars, []string{"x"}) {
				t.Fatalf("vars %v", vars)
			}
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = d.Domain.ConstName(v)
			}
			seen = append(seen, cells)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Complete || len(seen) != 2 {
		t.Fatalf("complete=%v seen=%v", res.Answer.Complete, seen)
	}

	// A sink that gives up after the first row: partial client-gone result.
	rows := 0
	res, err = Eval(context.Background(), Request{
		Domain: "presburger", State: st, Formula: f, Mode: ModeEnumerate,
		Budget: &EnumerationBudget{Rows: 16, Probe: 1 << 20},
		OnRow: func(vars []string, row Tuple) error {
			rows++
			return ErrClientGone
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stopped != "client-gone" {
		t.Fatalf("want partial client-gone, got partial=%v stopped=%q", res.Partial, res.Stopped)
	}
	if rows != 1 || res.Answer.Rows.Len() != 1 {
		t.Fatalf("sink rows %d, answer rows %d", rows, res.Answer.Rows.Len())
	}
}
