// Package finq is the public API of this reproduction of Stolboushkin &
// Taitslin, "Finite Queries Do Not Have Effective Syntax" (PODS 1995 /
// Information and Computation 153, 1999).
//
// It exposes the paper's objects as a library:
//
//   - seven domains — the pure-equality domain, N< (naturals with order),
//     full Presburger arithmetic, ℤ with order, N' (naturals with
//     successor), words with shortlex order, and the paper's trace domain
//     T — each recursive, each with a decision procedure for its
//     first-order theory built on quantifier elimination;
//   - relational database schemes and states (Codd's model) and query
//     evaluation: active-domain semantics and the paper's §1.1 enumeration
//     algorithm that computes finite answers over any decidable domain;
//   - the safety toolbox: syntactic safe-range analysis, the finitization
//     syntax of Theorem 2.2, relative-safety deciders for the positive
//     domains (Theorems 2.5 and 2.6), and the negative machinery over T —
//     totality queries, Theorem 3.1 equivalence sentences, and the
//     Theorem 3.3 halting reduction.
//
// Quickstart:
//
//	d, _ := finq.Lookup("eq")
//	scheme := finq.MustScheme(map[string]int{"F": 2})
//	st := finq.NewState(scheme)
//	st.Insert("F", finq.Word("adam"), finq.Word("abel"))
//	f, _ := d.Parse("exists y. F(x, y)")
//	ans, _ := finq.EvalActive(d, st, f)
package finq

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/deccache"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/domains/nless"
	"repro/internal/domains/nsucc"
	"repro/internal/domains/wordlex"
	"repro/internal/domains/zless"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/qstats"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/presburger"
	"repro/internal/query"
	"repro/internal/traces"
)

// Re-exported core types. The facade keeps one import for applications;
// the internal packages remain the implementation.
type (
	// Formula is a first-order formula.
	Formula = logic.Formula
	// Term is a first-order term.
	Term = logic.Term
	// Scheme is a database scheme.
	Scheme = db.Scheme
	// State is a database state.
	State = db.State
	// Tuple is a relation row.
	Tuple = db.Tuple
	// Relation is a finite relation.
	Relation = db.Relation
	// Value is a domain element.
	Value = domain.Value
	// Answer is a computed query answer.
	Answer = query.Answer
	// Verdict is a three-valued semi-decision outcome.
	Verdict = domain.Verdict
	// SafeRangeReport is the output of the safe-range analysis.
	SafeRangeReport = core.SafeRangeReport
)

// Verdict values.
const (
	Holds   = domain.Holds
	Fails   = domain.Fails
	Unknown = domain.Unknown
)

// Word returns a string-valued domain element (equality and trace domains).
func Word(s string) Value { return domain.Word(s) }

// Nat returns a natural-number element (arithmetic domains).
func Nat(n int64) Value { return domain.Int(n) }

// NewScheme builds a database scheme.
func NewScheme(relations map[string]int, constants ...string) (*Scheme, error) {
	return db.NewScheme(relations, constants...)
}

// MustScheme is NewScheme panicking on error.
func MustScheme(relations map[string]int, constants ...string) *Scheme {
	return db.MustScheme(relations, constants...)
}

// NewState returns the empty state of a scheme.
func NewState(scheme *Scheme) *State { return db.NewState(scheme) }

// DomainInfo bundles a domain with its decision procedure, quantifier
// eliminator, enumeration, and parser configuration.
type DomainInfo struct {
	// Name identifies the domain: "eq", "nless", "presburger", "nsucc",
	// or "traces".
	Name string
	// Doc is a one-line description.
	Doc string
	// Domain is the recursive interpretation.
	Domain domain.Domain
	// Decider decides pure-domain sentences.
	Decider domain.Decider
	// Eliminator performs quantifier elimination.
	Eliminator domain.Eliminator
	// Enumerator enumerates the universe (nil if unsupported).
	Enumerator domain.Enumerator
	// parserOpts classifies identifiers when parsing formulas.
	parserOpts parser.Options
}

// Parse parses a formula in the domain's concrete syntax.
func (d DomainInfo) Parse(src string) (*Formula, error) {
	return parser.ParseWith(src, d.parserOpts)
}

// ParseWithConstants parses a formula treating the given identifiers as
// constant symbols (for example database constants like "c"); all other
// plain identifiers in term position remain variables.
func (d DomainInfo) ParseWithConstants(src string, constants ...string) (*Formula, error) {
	opts := parser.Options{
		Constants: map[string]bool{},
		Functions: d.parserOpts.Functions,
	}
	for _, c := range constants {
		opts.Constants[c] = true
	}
	return parser.ParseWith(src, opts)
}

var registry = []DomainInfo{
	{
		Name: "eq", Doc: "infinite domain with equality only",
		Domain: eqdom.Domain{}, Decider: eqdom.Decider(),
		Eliminator: eqdom.Eliminator{}, Enumerator: eqdom.Domain{},
	},
	{
		Name: "nless", Doc: "natural numbers with <",
		Domain: nless.Domain{}, Decider: nless.Decider(),
		Eliminator: nless.Eliminator{}, Enumerator: nless.Domain{},
	},
	{
		Name: "presburger", Doc: "natural numbers with <, ≤, +, −, divisibility",
		Domain: presburger.Domain{}, Decider: presburger.Decider(),
		Eliminator: presburger.Eliminator{}, Enumerator: presburger.Domain{},
		parserOpts: parser.Options{Functions: map[string]bool{
			presburger.FuncAdd: true, presburger.FuncSub: true,
			presburger.FuncMul: true, presburger.FuncNeg: true,
		}},
	},
	{
		Name: "zless", Doc: "integers with <, +, −, divisibility",
		Domain: zless.Domain{}, Decider: zless.Decider(),
		Eliminator: zless.Eliminator(), Enumerator: zless.Domain{},
		parserOpts: parser.Options{Functions: map[string]bool{
			presburger.FuncAdd: true, presburger.FuncSub: true,
			presburger.FuncMul: true, presburger.FuncNeg: true,
		}},
	},
	{
		Name: "nsucc", Doc: "natural numbers with successor (no order)",
		Domain: nsucc.Domain{}, Decider: nsucc.Decider(),
		Eliminator: nsucc.Eliminator{}, Enumerator: nsucc.Domain{},
		parserOpts: parser.Options{Functions: nsucc.ParserOptions()},
	},
	{
		Name: "wordlex", Doc: "words over {a,b} with shortlex order",
		Domain: wordlex.Domain{}, Decider: wordlex.Decider(),
		Eliminator: wordlex.Eliminator{}, Enumerator: wordlex.Domain{},
	},
	{
		Name: "traces", Doc: "the paper's trace domain T (Section 3)",
		Domain: traces.Domain{}, Decider: traces.Decider(),
		Eliminator: traces.Eliminator{}, Enumerator: traces.Domain{},
		parserOpts: parser.Options{Functions: traces.ParserOptions()},
	},
}

// Domains lists the registered domains.
func Domains() []DomainInfo { return append([]DomainInfo(nil), registry...) }

// Lookup finds a domain by name.
func Lookup(name string) (DomainInfo, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Name
	}
	return DomainInfo{}, fmt.Errorf("finq: unknown domain %q (have %s)", name, strings.Join(names, ", "))
}

// MustLookup is Lookup panicking on error.
func MustLookup(name string) DomainInfo {
	d, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Translate rewrites a query into a pure domain formula relative to a state
// (the §1.1 / [AGSS86] technique).
func Translate(d DomainInfo, st *State, f *Formula) (*Formula, error) {
	return query.Translate(d.Domain, st, f)
}

// EvalMode selects the evaluation algorithm for Eval.
type EvalMode string

const (
	// ModeActive is active-domain evaluation (the default): quantifiers
	// and free variables range over the state's active domain plus the
	// query's constants.
	ModeActive EvalMode = "active"
	// ModeEnumerate is the paper's §1.1 enumeration algorithm: complete on
	// finite (safe) queries, budget-capped on infinite ones.
	ModeEnumerate EvalMode = "enumerate"
)

// Request describes one evaluation for Eval: which domain, against which
// state, which formula, and how to run it. The zero value of every option
// is a sensible default, so Request{Domain: "eq", Formula: f} is a
// complete request.
type Request struct {
	// Domain names the registered domain ("eq", "nless", "presburger",
	// "zless", "nsucc", "wordlex", "traces").
	Domain string
	// State is the database state; nil means the empty state of the empty
	// scheme.
	State *State
	// Formula is the parsed query. Required.
	Formula *Formula
	// Mode selects the algorithm; empty means ModeActive.
	Mode EvalMode
	// Workers fans active-domain evaluation out over a worker pool when
	// > 1; ≤ 1 evaluates serially. Ignored under ModeEnumerate and when
	// Profile is set (profiling is serial by construction).
	Workers int
	// Budget bounds ModeEnumerate; nil means DefaultBudget. Ignored under
	// ModeActive.
	Budget *EnumerationBudget
	// Profile requests a per-node EXPLAIN profile alongside the answer.
	// Profiling adds per-node timers, so profiled runs are slower.
	Profile bool
	// OnRow, when non-nil under ModeEnumerate, receives each answer row as
	// the §1.1 algorithm finds it — before the next existential decision —
	// so callers can stream rows while the evaluation is still running.
	// The tuple is shared with the answer under construction and must not
	// be mutated. A non-nil error stops the enumeration: the rows so far
	// come back as a partial Result (Stopped "client-gone" when the error
	// is ErrClientGone, an error otherwise).
	OnRow func(vars []string, row Tuple) error
}

// Result is Eval's outcome. Partial answers — a row budget or the request
// context stopped the computation — are results, not errors: Answer holds
// the rows found so far, Partial is set, and Stopped names what stopped
// the run ("budget", "deadline", "canceled", or "client-gone").
type Result struct {
	// Answer is the computed (possibly partial) answer.
	Answer *Answer
	// Profile is the EXPLAIN profile, when the request asked for one.
	Profile *Profile
	// Partial reports that the computation was stopped before completion.
	Partial bool
	// Stopped is "" for a complete answer, else "budget", "deadline",
	// "canceled", or "client-gone".
	Stopped string
}

// ErrClientGone marks a consumer that went away mid-evaluation: cancel an
// evaluation context with it as the cause (context.WithCancelCause), or
// return it from Request.OnRow, and the partial Result comes back with
// Stopped = "client-gone" instead of "canceled" — so spans, the access
// log, and per-query stats distinguish a client disconnect from a
// server-side cancellation.
var ErrClientGone = errors.New("finq: client gone")

// Eval is the single evaluation entrypoint: it runs the request's formula
// over the named domain and state under the given context, honoring
// cancellation between rows, probes, and quantifier-elimination stages.
// When the context dies mid-computation the rows found so far come back as
// a partial Result rather than an error, so services can serve what was
// computed. The CLIs, the REPL, and the finqd server all evaluate through
// this function.
func Eval(ctx context.Context, req Request) (*Result, error) {
	if req.Formula == nil {
		return nil, errors.New("finq: Eval: Request.Formula is required")
	}
	d, err := Lookup(req.Domain)
	if err != nil {
		return nil, err
	}
	st := req.State
	if st == nil {
		st = db.NewState(db.MustScheme(map[string]int{}))
	}
	mode := req.Mode
	if mode == "" {
		mode = ModeActive
	}
	// The root evaluation span: with a request ID in ctx (finqd, or any
	// caller using logctx.WithRequestID) its trace events — and those of
	// every evaluator and QE span below it — carry the ID, so one request's
	// full lifecycle can be pulled out of a trace by ID. With a trace
	// position in ctx (tracectx.With) the span gets its own W3C span ID and
	// the evaluator spans below become its children.
	ctx, sp := obs.StartSpanCtx(ctx, "finq.eval")
	sp.ArgStr("domain", req.Domain)
	sp.ArgStr("mode", string(mode))
	defer sp.End()

	// Per-query stats: deccache and plan-cache tallies on the context
	// attribute this evaluation's cache traffic to it, and the finished run
	// is folded into the qstats registry keyed by the formula's canonical
	// key.
	var tally *deccache.Tally
	var planTally *plan.Tally
	recording := qstats.Enabled()
	if recording {
		ctx, tally = deccache.WithTally(ctx)
		ctx, planTally = plan.WithTally(ctx)
	}
	// The canonical key is both the qstats registry key and the pprof
	// query_key label, so a profile slice and a stats row name the same
	// query class. Computed once, only when someone will consume it.
	var key string
	if recording || prof.Enabled() {
		key = req.Formula.CanonicalKey()
	}
	var res *Result
	t0 := time.Now()
	mark := prof.BeginAlloc()
	prof.Do(ctx, func(ctx context.Context) {
		res, err = evalMode(ctx, d, st, mode, req)
	}, "query_key", prof.QueryKeyLabel(key), "domain", req.Domain, "mode", string(mode))
	allocBytes, allocObjs, allocSampled := mark.End()
	// A cancellation caused by the consumer going away (the streaming
	// handler cancels with ErrClientGone when the client disconnects) is
	// its own stop reason, so traffic analysis can tell abandoned requests
	// from server-side deadlines.
	if res != nil && res.Stopped == "canceled" && errors.Is(context.Cause(ctx), ErrClientGone) {
		res.Stopped = "client-gone"
	}
	if res != nil && res.Stopped != "" {
		sp.ArgStr("stopped", res.Stopped)
	}
	// EXPLAIN surfaces carry the compiled plan's text: profiled runs
	// evaluate through the instrumented interpreter, so the plan lookup here
	// (a cache hit in the steady state) shows what the planner would run.
	if res != nil && res.Profile != nil {
		res.Profile.Plan = plan.For(ctx, st.Scheme(), d.Name, key, req.Formula).Text()
	}
	if recording {
		s := makeSample(key, d, mode, req.Formula, res, err, time.Since(t0), tally, planTally)
		s.AllocBytes, s.AllocObjects, s.AllocSampled = allocBytes, allocObjs, allocSampled
		qstats.Record(s)
	}
	return res, err
}

// evalMode dispatches the evaluation proper; Eval wraps it with the span
// and the qstats recording.
func evalMode(ctx context.Context, d DomainInfo, st *State, mode EvalMode, req Request) (*Result, error) {
	switch mode {
	case ModeActive:
		if req.Profile {
			ans, prof, err := query.EvalActiveProfiledCtx(ctx, d.Domain, st, req.Formula)
			return packResult(ans, prof, err)
		}
		if req.Workers > 1 {
			ans, err := query.EvalActiveParallelCtx(ctx, d.Domain, st, req.Formula, req.Workers)
			return packResult(ans, nil, err)
		}
		ans, err := query.EvalActiveCtx(ctx, d.Domain, st, req.Formula)
		return packResult(ans, nil, err)
	case ModeEnumerate:
		en, ok := d.Domain.(query.Enumerable)
		if !ok || d.Enumerator == nil {
			return nil, fmt.Errorf("finq: domain %s does not support enumeration", d.Name)
		}
		budget := DefaultBudget
		if req.Budget != nil {
			budget = *req.Budget
		}
		var sink query.RowSink
		if req.OnRow != nil {
			sink = query.RowSink(req.OnRow)
		}
		ans, err := query.EnumerationAnswerSinkCtx(ctx, en, d.Decider, st, req.Formula, budget, sink)
		return packResult(ans, nil, err)
	}
	return nil, fmt.Errorf("finq: Eval: unknown mode %q (want %q or %q)", mode, ModeActive, ModeEnumerate)
}

// maxQueryDisplay bounds the human-readable query string stored per
// registry entry, so pathological formula sizes don't dominate the weight.
const maxQueryDisplay = 120

// makeSample builds the qstats sample for one finished evaluation; Eval
// stamps the allocation fields and records it.
func makeSample(key string, d DomainInfo, mode EvalMode, f *Formula, res *Result, err error, dur time.Duration, tally *deccache.Tally, planTally *plan.Tally) qstats.Sample {
	display := f.String()
	if len(display) > maxQueryDisplay {
		r := []rune(display)
		if len(r) > maxQueryDisplay {
			r = r[:maxQueryDisplay]
		}
		display = string(r) + "…"
	}
	s := qstats.Sample{
		Key:       key,
		Domain:    d.Name,
		Mode:      string(mode),
		Query:     display,
		LatencyUS: dur.Microseconds(),
	}
	if tally != nil {
		s.CacheHits = tally.Hits.Load()
		s.CacheMisses = tally.Misses.Load()
	}
	if planTally != nil {
		s.Plan = string(planTally.Tier())
		s.PlanHits = planTally.Hits.Load()
		s.PlanMisses = planTally.Misses.Load()
	}
	switch {
	case err != nil:
		s.Stopped = "error"
	case res != nil:
		s.Stopped = res.Stopped
	}
	if res != nil && res.Answer != nil && res.Answer.Rows != nil {
		s.Rows = int64(res.Answer.Rows.Len())
	}
	if res != nil && res.Profile != nil {
		for _, ns := range res.Profile.Flatten() {
			s.Nodes = append(s.Nodes, qstats.NodeSample{
				Path: ns.Path, Op: ns.Op, Evals: ns.Evals, True: ns.True, Range: int64(ns.Range),
			})
		}
	}
	return s
}

// packResult folds an evaluator's (answer, error) pair into the Result
// contract: cancellations with a partial answer become partial results,
// budget-stopped answers are marked partial, other errors pass through.
func packResult(ans *Answer, prof *Profile, err error) (*Result, error) {
	if err != nil {
		var stopped string
		switch {
		case errors.Is(err, ErrClientGone):
			// A row sink reported the consumer gone (streaming write
			// failure); the rows delivered so far are the partial answer.
			stopped = "client-gone"
		case errors.Is(err, context.DeadlineExceeded):
			stopped = "deadline"
		case errors.Is(err, context.Canceled):
			stopped = "canceled"
		}
		if stopped != "" && ans != nil {
			return &Result{Answer: ans, Profile: prof, Partial: true, Stopped: stopped}, nil
		}
		return nil, err
	}
	res := &Result{Answer: ans, Profile: prof}
	if ans != nil && !ans.Complete {
		res.Partial, res.Stopped = true, "budget"
	}
	return res, nil
}

// EvalActive evaluates a query under active-domain semantics.
//
// Deprecated: use Eval, the options-struct entrypoint, which additionally
// honors a request context. EvalActive is Eval with a background context
// and default options.
func EvalActive(d DomainInfo, st *State, f *Formula) (*Answer, error) {
	res, err := Eval(context.Background(), Request{Domain: d.Name, State: st, Formula: f})
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// Profile is a per-query EXPLAIN report: a tree mirroring the formula with
// per-node eval counts, row cardinalities, quantifier range sizes, and
// wall time, rendered by its Text and JSON methods.
type Profile = query.Profile

// Explain evaluates a query under active-domain semantics with per-node
// profiling and returns the answer plus its EXPLAIN profile. Profiling
// adds per-node timers, so this is slower than EvalActive — use it to
// understand a query, not to serve it.
//
// Deprecated: use Eval with Request.Profile set, which additionally honors
// a request context.
func Explain(d DomainInfo, st *State, f *Formula) (*Answer, *Profile, error) {
	res, err := Eval(context.Background(), Request{Domain: d.Name, State: st, Formula: f, Profile: true})
	if err != nil {
		return nil, nil, err
	}
	return res.Answer, res.Profile, nil
}

// EnumerationBudget bounds Enumerate.
type EnumerationBudget = query.EnumerationBudget

// DefaultBudget is a budget suitable for interactive use.
var DefaultBudget = query.DefaultBudget

// Enumerate runs the paper's §1.1 query-answering algorithm: complete on
// finite (safe) queries, budget-capped on infinite ones.
//
// Deprecated: use Eval with Request.Mode set to ModeEnumerate, which
// additionally honors a request context.
func Enumerate(d DomainInfo, st *State, f *Formula, budget EnumerationBudget) (*Answer, error) {
	res, err := Eval(context.Background(), Request{
		Domain: d.Name, State: st, Formula: f, Mode: ModeEnumerate, Budget: &budget,
	})
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// Decide decides a pure-domain sentence.
func Decide(d DomainInfo, sentence *Formula) (bool, error) {
	return d.Decider.Decide(sentence)
}

// Eliminate returns a quantifier-free equivalent of f over the domain.
func Eliminate(d DomainInfo, f *Formula) (*Formula, error) {
	return d.Eliminator.Eliminate(f)
}

// SafeRange runs the syntactic range-restriction analysis.
func SafeRange(scheme *Scheme, f *Formula) SafeRangeReport {
	return core.SafeRange(scheme, f)
}

// Finitize returns the Theorem 2.2 finitization of f (meaningful over
// extensions of N<).
func Finitize(f *Formula) *Formula { return core.Finitize(f) }

// RelativeSafety decides (or semi-decides) whether f's answer is finite in
// state st over the domain: decidable for eq, nless, presburger, and nsucc;
// a budgeted semi-decision for traces (Theorem 3.3 makes a decider
// impossible).
func RelativeSafety(d DomainInfo, st *State, f *Formula) (Verdict, error) {
	switch d.Name {
	case "eq":
		finite, err := core.RelativeSafetyEq(st, f)
		return boolVerdict(finite), err
	case "nless", "presburger":
		finite, err := core.RelativeSafetyPresburger(st, f)
		return boolVerdict(finite), err
	case "nsucc":
		finite, err := core.RelativeSafetyNsucc(st, f)
		return boolVerdict(finite), err
	case "zless":
		finite, err := core.RelativeSafetyIntegers(st, f)
		return boolVerdict(finite), err
	case "wordlex":
		finite, err := core.RelativeSafetyWordlex(st, f)
		return boolVerdict(finite), err
	case "traces":
		return core.RelativeSafetyTraces(st, f, core.DefaultTracesBudget)
	}
	return Unknown, fmt.Errorf("finq: no relative-safety procedure for domain %q", d.Name)
}

func boolVerdict(b bool) Verdict {
	if b {
		return Holds
	}
	return Fails
}

// TotalityQuery returns the Theorem 3.1 query M(x) := P(M, c, x) over the
// trace domain, with "c" a database constant.
func TotalityQuery(machineWord string) *Formula { return core.TotalityQuery(machineWord) }

// TotalityScheme returns the one-constant scheme of Theorem 3.1.
func TotalityScheme() *Scheme { return core.TotalityScheme() }

// VerifyTotality decides the Theorem 3.1 equivalence sentence between a
// machine's totality query and a candidate formula; truth certifies the
// machine total whenever the candidate is finite.
func VerifyTotality(machineWord string, candidate *Formula) (bool, error) {
	return core.VerifyTotality(machineWord, candidate)
}

// HaltingToRelativeSafety is the Theorem 3.3 reduction from the halting
// problem to relative safety over T.
func HaltingToRelativeSafety(machineWord, input string) (*Formula, *State, error) {
	return core.HaltingToRelativeSafety(machineWord, input)
}
