// Plan-compiler benchmark: the E1 enumeration workload through the
// interpreter (planner disabled, decision cache on — the previous best
// configuration) and through the plan-caching compiler (the default). `make
// bench-compile` runs TestWriteBenchCompile, which measures both and writes
// BENCH_compile.json; the acceptance bar is compiled ≥ 10× the interpreted
// rows/sec.
package finq

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/deccache"
	"repro/internal/plan"
	"repro/internal/presburger"
	"repro/internal/query"
)

// runCompileBench measures the E1 workload (32 rows, stride 4, membership
// query over Presburger) with the planner toggled as given. The decision
// cache is on in both variants, so the planner is measured against the
// interpreter at its best, not against a strawman.
func runCompileBench(b *testing.B, planned bool) {
	prevPlan := plan.SetEnabled(planned)
	defer plan.SetEnabled(prevPlan)
	prevCache := deccache.SetEnabled(true)
	defer deccache.SetEnabled(prevCache)
	st, f := perfBenchWorkload(b)
	budget := perfBenchBudget()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := query.EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, budget)
		if err != nil || !ans.Complete || ans.Rows.Len() != perfBenchRows {
			b.Fatalf("bad answer: %v %v", ans, err)
		}
	}
}

func BenchmarkEnumCompileInterpreted(b *testing.B) { runCompileBench(b, false) }

func BenchmarkEnumCompileCompiled(b *testing.B) { runCompileBench(b, true) }

// TestWriteBenchCompile measures both variants and writes
// BENCH_compile.json. Gated behind BENCH_COMPILE=1 (the `make
// bench-compile` target) so plain `go test` stays fast and does not
// rewrite the checked-in measurement.
func TestWriteBenchCompile(t *testing.T) {
	if os.Getenv("BENCH_COMPILE") == "" {
		t.Skip("set BENCH_COMPILE=1 (or run `make bench-compile`) to write BENCH_compile.json")
	}
	// Interleave the variants over several rounds and keep each variant's
	// fastest run — the minimum is the least-noise estimate, and
	// interleaving cancels drift between variants.
	const rounds = 3
	ns := map[string]int64{}
	for r := 0; r < rounds; r++ {
		for name, bench := range map[string]func(*testing.B){
			"interpreted": BenchmarkEnumCompileInterpreted,
			"compiled":    BenchmarkEnumCompileCompiled,
		} {
			res := testing.Benchmark(bench)
			if ns[name] == 0 || res.NsPerOp() < ns[name] {
				ns[name] = res.NsPerOp()
			}
		}
	}
	rowsPerSec := func(name string) float64 {
		return float64(perfBenchRows) / (float64(ns[name]) / 1e9)
	}

	// Plan-cache hit rate over a steady-state stretch: a tallied context
	// attributes each evaluation's plan lookups; after the first compile
	// every lookup is a hit.
	prevPlan := plan.SetEnabled(true)
	st, f := perfBenchWorkload(t)
	budget := perfBenchBudget()
	ctx, tally := plan.WithTally(context.Background())
	const steadyRuns = 16
	for i := 0; i < steadyRuns; i++ {
		if _, err := query.EnumerationAnswerCtx(ctx, presburger.Domain{}, presburger.Decider(), st, f, budget); err != nil {
			t.Fatal(err)
		}
	}
	plan.SetEnabled(prevPlan)
	hits, misses := tally.Hits.Load(), tally.Misses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses) * 100
	}

	speedup := float64(ns["interpreted"]) / float64(ns["compiled"])
	out := map[string]any{
		"benchmark":                       fmt.Sprintf("query.EnumerationAnswer, E1 workload (%d rows over N with Presburger QE), plan compiler vs interpreter", perfBenchRows),
		"rows":                            perfBenchRows,
		"rounds":                          rounds,
		"plan_tier":                       string(tally.Tier()),
		"ns_per_op_interpreted":           ns["interpreted"],
		"ns_per_op_compiled":              ns["compiled"],
		"rows_per_sec_interpreted":        rowsPerSec("interpreted"),
		"rows_per_sec_compiled":           rowsPerSec("compiled"),
		"speedup_compiled_vs_interpreted": speedup,
		"plan_cache_hit_rate_pct":         hitRate,
		"note":                            "min ns/op over interleaved rounds; interpreted = planner off, incremental enumeration loop with the memoized decider (the previous best); compiled = plan-caching compiler (algebra tier materializes the answer once, probes replay against it)",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_compile.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_compile.json: interpreted %d ns/op (%.1f rows/s), compiled %d ns/op (%.1f rows/s), %.1fx, plan-cache hit rate %.1f%%\n",
		ns["interpreted"], rowsPerSec("interpreted"), ns["compiled"], rowsPerSec("compiled"), speedup, hitRate)
	if speedup < 10 {
		t.Errorf("compiled/interpreted speedup %.2fx below the 10x acceptance bar", speedup)
	}
	if got := rowsPerSec("compiled"); got < 436 {
		t.Errorf("compiled throughput %.1f rows/sec below the 436 rows/sec bar (10x the cached interpreter baseline)", got)
	}
}
