GO ?= go

.PHONY: build test vet staticcheck race bench bench-obs bench-perf bench-compile bench-log bench-qstats bench-prof bench-serve bench-index trace-demo trace-stitch-demo serve-smoke serve-check lint-logs docs-api docs-api-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools if installed, falling back to go vet
# so the target works in minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

race:
	$(GO) test -race ./...

# bench-obs measures the observability layer's overhead on EvalActiveCtx
# in four postures: uninstrumented, instrumented (recorder disarmed),
# flight recorder armed, and armed under a W3C trace position (every span
# mints a child span ID). Writes BENCH_obs.json; fails if the
# instrumented overhead or the identity-minting increment exceeds 3%.
bench-obs:
	BENCH_OBS=1 $(GO) test -run TestWriteBenchObs -count=1 -v .

# bench is the historical alias for bench-obs.
bench: bench-obs

# bench-perf measures the E1 enumeration through three evaluators (the
# pre-optimization loop, the incremental loop with the decision cache off,
# and with it on) and writes BENCH_perf.json with rows/sec and the cache
# hit rate. Fails if cache + incremental enumeration is not at least 2x
# the uncached rows/sec.
bench-perf:
	BENCH_PERF=1 $(GO) test -run TestWriteBenchPerf -count=1 -v .

# bench-compile measures the E1 enumeration through the interpreter
# (planner off, decision cache on) and through the plan-caching compiler
# (the default) and writes BENCH_compile.json with rows/sec for both and
# the plan-cache hit rate. Fails if compiled is not at least 10x the
# interpreted rows/sec.
bench-compile:
	BENCH_COMPILE=1 $(GO) test -run TestWriteBenchCompile -count=1 -v .

# bench-log measures the structured access log's overhead on the E1
# request through the full finqd handler chain (logging on vs. a disabled
# handler) and writes BENCH_log.json. Fails if the overhead exceeds 3%.
bench-log:
	BENCH_LOG=1 $(GO) test -run TestWriteBenchLog -count=1 -v ./internal/server

# bench-qstats measures the per-query stats registry's overhead on the E1
# evaluation through finq.Eval (recording on vs. the toggle off) and
# writes BENCH_qstats.json. Fails if the overhead exceeds 3%.
bench-qstats:
	BENCH_QSTATS=1 $(GO) test -run TestWriteBenchQstats -count=1 -v .

# bench-prof measures the pprof label attribution + allocation metering
# overhead on the E1 evaluation through finq.Eval (the prof toggle on vs.
# off) and writes BENCH_prof.json. Fails if the overhead exceeds 3%.
bench-prof:
	BENCH_PROF=1 $(GO) test -run TestWriteBenchProf -count=1 -v .

# bench-serve runs the finqload measurement against an in-process finqd on
# the E1 corpus and writes BENCH_serve.json. Fails if batched per-query
# throughput is under 5x single /v1/eval, or if the first streamed row of
# a budget-bound enumeration arrives outside the first half of the run.
bench-serve:
	BENCH_SERVE=1 $(GO) test -run TestWriteBenchServe -count=1 -v ./cmd/finqload

# docs-api regenerates docs/API.md from the apiv1 wire types;
# docs-api-check (used by CI) verifies it is current.
docs-api:
	$(GO) run scripts/apidocgen.go

docs-api-check:
	$(GO) run scripts/apidocgen.go -check

# bench-index merges every BENCH_*.json measurement into the versioned
# BENCH_index.json; `-check` mode (used by CI) verifies it is current.
bench-index:
	$(GO) run scripts/benchindex.go

# trace-demo records the E1 experiment (enumeration over the Presburger
# domain) with the flight recorder armed and writes a Chrome trace —
# load trace-e1.json in https://ui.perfetto.dev or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/finq -trace-out trace-e1.json eval \
		-domain presburger -mode enumerate -rows 32 \
		-state testdata/e1_state.json "exists y. (R(y) & lt(x, y))"
	@echo "wrote trace-e1.json"

# trace-stitch-demo is the distributed-tracing loop end to end: finqload
# boots a two-shard in-process fleet with armed flight recorders (one W3C
# trace root per synthetic request), dumps one JSONL ring per shard, and
# `finq trace stitch` merges them into a single Chrome trace with one
# lane per process — which scripts/tracecheck.go then validates
# structurally (two lanes, begin/end discipline, flow pairing). Load
# stitched.trace.json in https://ui.perfetto.dev or chrome://tracing.
trace-stitch-demo:
	rm -rf trace-stitch-dumps && mkdir -p trace-stitch-dumps
	$(GO) run ./cmd/finqload -shards 2 -trace-dir trace-stitch-dumps \
		-duration 2s -warmup 500ms
	$(GO) run ./cmd/finq trace stitch -out stitched.trace.json \
		trace-stitch-dumps/*.trace.jsonl
	$(GO) run scripts/tracecheck.go -min-events 100 -min-lanes 2 stitched.trace.json
	@echo "wrote stitched.trace.json"

# serve-smoke boots finqd on an ephemeral port, exercises every endpoint
# once in-process (no curl needed), verifies the service metrics, and
# writes a Chrome trace of the server-side evaluations to trace-serve.json.
serve-smoke:
	$(GO) run ./cmd/finqd -trace-out trace-serve.json -smoke
	@echo "wrote trace-serve.json"

# serve-check probes a running finqd from the outside with curl: health
# endpoints must answer 200 and /metrics must be a well-formed Prometheus
# exposition (scripts/expocheck.go).
serve-check:
	sh scripts/serve-check.sh

# lint-logs enforces that the server emits all its output through the
# structured access log: no bare fmt.Print*/log.Print* in internal/server
# production code (test files may print benchmark summaries).
lint-logs:
	@if ls internal/server/*.go | grep -v _test.go | xargs grep -nE '(fmt|log)\.Print'; then \
		echo "lint-logs: internal/server must log through slog, not fmt/log.Print*"; \
		exit 1; \
	else \
		echo "lint-logs: internal/server is clean"; \
	fi
