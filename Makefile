GO ?= go

.PHONY: build test vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench measures the observability layer's overhead on EvalActive
# (instrumented vs. uninstrumented) and writes BENCH_obs.json.
bench:
	BENCH_OBS=1 $(GO) test -run TestWriteBenchObs -count=1 -v .
