GO ?= go

.PHONY: build test vet staticcheck race bench bench-perf trace-demo serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools if installed, falling back to go vet
# so the target works in minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

race:
	$(GO) test -race ./...

# bench measures the observability layer's overhead on EvalActive
# (instrumented vs. uninstrumented, flight recorder disarmed) and writes
# BENCH_obs.json. Fails if the enabled overhead exceeds 5%.
bench:
	BENCH_OBS=1 $(GO) test -run TestWriteBenchObs -count=1 -v .

# bench-perf measures the E1 enumeration through three evaluators (the
# pre-optimization loop, the incremental loop with the decision cache off,
# and with it on) and writes BENCH_perf.json with rows/sec and the cache
# hit rate. Fails if cache + incremental enumeration is not at least 2x
# the uncached rows/sec.
bench-perf:
	BENCH_PERF=1 $(GO) test -run TestWriteBenchPerf -count=1 -v .

# trace-demo records the E1 experiment (enumeration over the Presburger
# domain) with the flight recorder armed and writes a Chrome trace —
# load trace-e1.json in https://ui.perfetto.dev or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/finq -trace-out trace-e1.json eval \
		-domain presburger -mode enumerate -rows 32 \
		-state testdata/e1_state.json "exists y. (R(y) & lt(x, y))"
	@echo "wrote trace-e1.json"

# serve-smoke boots finqd on an ephemeral port, exercises every endpoint
# once in-process (no curl needed), verifies the service metrics, and
# writes a Chrome trace of the server-side evaluations to trace-serve.json.
serve-smoke:
	$(GO) run ./cmd/finqd -trace-out trace-serve.json -smoke
	@echo "wrote trace-serve.json"
