package finq

import (
	"encoding/json"
	"fmt"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/query"
)

// stateJSON is the on-disk form of a database state:
//
//	{
//	  "relations": {"F": [["adam", "abel"], ["adam", "cain"]]},
//	  "constants": {"c": "1&1"}
//	}
//
// Every value is a string naming a domain element (numerals for the
// arithmetic domains, words for the others).
type stateJSON struct {
	Relations map[string][][]string `json:"relations"`
	Constants map[string]string     `json:"constants,omitempty"`
}

// ParseState decodes a JSON state over the given domain, building the
// scheme from the data: relation arities are taken from the first row.
func ParseState(d DomainInfo, data []byte) (*State, error) {
	var raw stateJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("finq: bad state JSON: %w", err)
	}
	relations := map[string]int{}
	for name, rows := range raw.Relations {
		if len(rows) == 0 {
			return nil, fmt.Errorf("finq: relation %q has no rows; arity unknown (add at least one row or omit it)", name)
		}
		relations[name] = len(rows[0])
	}
	var constants []string
	for name := range raw.Constants {
		constants = append(constants, name)
	}
	scheme, err := db.NewScheme(relations, constants...)
	if err != nil {
		return nil, err
	}
	st := db.NewState(scheme)
	for name, rows := range raw.Relations {
		for _, row := range rows {
			if len(row) != relations[name] {
				return nil, fmt.Errorf("finq: relation %q has rows of differing widths", name)
			}
			tuple := make([]domain.Value, len(row))
			for i, cell := range row {
				v, err := d.Domain.ConstValue(cell)
				if err != nil {
					return nil, fmt.Errorf("finq: relation %q row %v: %w", name, row, err)
				}
				tuple[i] = v
			}
			if err := st.Insert(name, tuple...); err != nil {
				return nil, err
			}
		}
	}
	for name, cell := range raw.Constants {
		v, err := d.Domain.ConstValue(cell)
		if err != nil {
			return nil, fmt.Errorf("finq: constant %q: %w", name, err)
		}
		if err := st.SetConstant(name, v); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// AnswerJSON is the wire form of an Answer, shared by the CLI -json
// output and the finqd /v1/eval response:
//
//	{"vars": ["x"], "rows": [["0"], ["1"]], "complete": true}
//
// Boolean (no free variable) answers carry a "truth" field instead of
// rows. Row cells are domain constant names, exactly as in the state
// format, so decoding needs the same domain that produced the answer.
type AnswerJSON struct {
	Vars     []string   `json:"vars"`
	Truth    *bool      `json:"truth,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Complete bool       `json:"complete"`
}

// EncodeAnswer converts an answer into its wire form over the domain.
func EncodeAnswer(d DomainInfo, ans *Answer) *AnswerJSON {
	out := &AnswerJSON{Vars: append([]string{}, ans.Vars...), Complete: ans.Complete}
	if len(ans.Vars) == 0 {
		truth := ans.Rows.Len() > 0
		out.Truth = &truth
		return out
	}
	for _, tuple := range ans.Rows.Tuples() {
		row := make([]string, len(tuple))
		for i, v := range tuple {
			row[i] = d.Domain.ConstName(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Decode rebuilds the answer from its wire form over the domain,
// inverting EncodeAnswer.
func (a *AnswerJSON) Decode(d DomainInfo) (*Answer, error) {
	if len(a.Vars) == 0 {
		if a.Truth == nil {
			return nil, fmt.Errorf("finq: boolean answer JSON misses \"truth\"")
		}
		ans := query.NewBoolAnswer(*a.Truth)
		ans.Complete = a.Complete
		return ans, nil
	}
	ans := &Answer{Vars: append([]string{}, a.Vars...), Rows: db.NewRelation(len(a.Vars)), Complete: a.Complete}
	for _, row := range a.Rows {
		if len(row) != len(a.Vars) {
			return nil, fmt.Errorf("finq: answer row %v has %d cells, want %d", row, len(row), len(a.Vars))
		}
		tuple := make([]domain.Value, len(row))
		for i, cell := range row {
			v, err := d.Domain.ConstValue(cell)
			if err != nil {
				return nil, fmt.Errorf("finq: answer row %v: %w", row, err)
			}
			tuple[i] = v
		}
		if err := ans.Rows.Add(tuple); err != nil {
			return nil, err
		}
	}
	return ans, nil
}

// ResultJSON is the wire form of an Eval Result — the body of a /v1/eval
// response and of the CLI's -json output. Stopped distinguishes partial
// results: "budget" (row/probe budget exhausted), "deadline" (the request
// deadline expired mid-computation), "canceled" (the client went away).
type ResultJSON struct {
	Answer  *AnswerJSON `json:"answer,omitempty"`
	Profile *Profile    `json:"profile,omitempty"`
	Partial bool        `json:"partial,omitempty"`
	Stopped string      `json:"stopped,omitempty"`
}

// EncodeResult converts an Eval result into its wire form over the domain.
func EncodeResult(d DomainInfo, res *Result) *ResultJSON {
	out := &ResultJSON{Profile: res.Profile, Partial: res.Partial, Stopped: res.Stopped}
	if res.Answer != nil {
		out.Answer = EncodeAnswer(d, res.Answer)
	}
	return out
}

// MarshalState encodes a state as JSON.
func MarshalState(d DomainInfo, st *State) ([]byte, error) {
	out := stateJSON{Relations: map[string][][]string{}, Constants: map[string]string{}}
	for name := range st.Scheme().Relations {
		rel, err := st.Relation(name)
		if err != nil {
			return nil, err
		}
		rows := make([][]string, 0, rel.Len())
		for _, tuple := range rel.Tuples() {
			row := make([]string, len(tuple))
			for i, v := range tuple {
				row[i] = d.Domain.ConstName(v)
			}
			rows = append(rows, row)
		}
		out.Relations[name] = rows
	}
	for _, cname := range st.Scheme().Constants {
		v, err := st.Constant(cname)
		if err != nil {
			continue // unset constants are omitted
		}
		out.Constants[cname] = d.Domain.ConstName(v)
	}
	if len(out.Constants) == 0 {
		out.Constants = nil
	}
	return json.MarshalIndent(out, "", "  ")
}
