package finq

import (
	"encoding/json"
	"fmt"

	"repro/internal/db"
	"repro/internal/domain"
)

// stateJSON is the on-disk form of a database state:
//
//	{
//	  "relations": {"F": [["adam", "abel"], ["adam", "cain"]]},
//	  "constants": {"c": "1&1"}
//	}
//
// Every value is a string naming a domain element (numerals for the
// arithmetic domains, words for the others).
type stateJSON struct {
	Relations map[string][][]string `json:"relations"`
	Constants map[string]string     `json:"constants,omitempty"`
}

// ParseState decodes a JSON state over the given domain, building the
// scheme from the data: relation arities are taken from the first row.
func ParseState(d DomainInfo, data []byte) (*State, error) {
	var raw stateJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("finq: bad state JSON: %w", err)
	}
	relations := map[string]int{}
	for name, rows := range raw.Relations {
		if len(rows) == 0 {
			return nil, fmt.Errorf("finq: relation %q has no rows; arity unknown (add at least one row or omit it)", name)
		}
		relations[name] = len(rows[0])
	}
	var constants []string
	for name := range raw.Constants {
		constants = append(constants, name)
	}
	scheme, err := db.NewScheme(relations, constants...)
	if err != nil {
		return nil, err
	}
	st := db.NewState(scheme)
	for name, rows := range raw.Relations {
		for _, row := range rows {
			if len(row) != relations[name] {
				return nil, fmt.Errorf("finq: relation %q has rows of differing widths", name)
			}
			tuple := make([]domain.Value, len(row))
			for i, cell := range row {
				v, err := d.Domain.ConstValue(cell)
				if err != nil {
					return nil, fmt.Errorf("finq: relation %q row %v: %w", name, row, err)
				}
				tuple[i] = v
			}
			if err := st.Insert(name, tuple...); err != nil {
				return nil, err
			}
		}
	}
	for name, cell := range raw.Constants {
		v, err := d.Domain.ConstValue(cell)
		if err != nil {
			return nil, fmt.Errorf("finq: constant %q: %w", name, err)
		}
		if err := st.SetConstant(name, v); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// MarshalState encodes a state as JSON.
func MarshalState(d DomainInfo, st *State) ([]byte, error) {
	out := stateJSON{Relations: map[string][][]string{}, Constants: map[string]string{}}
	for name := range st.Scheme().Relations {
		rel, err := st.Relation(name)
		if err != nil {
			return nil, err
		}
		rows := make([][]string, 0, rel.Len())
		for _, tuple := range rel.Tuples() {
			row := make([]string, len(tuple))
			for i, v := range tuple {
				row[i] = d.Domain.ConstName(v)
			}
			rows = append(rows, row)
		}
		out.Relations[name] = rows
	}
	for _, cname := range st.Scheme().Constants {
		v, err := st.Constant(cname)
		if err != nil {
			continue // unset constants are omitted
		}
		out.Constants[cname] = d.Domain.ConstName(v)
	}
	if len(out.Constants) == 0 {
		out.Constants = nil
	}
	return json.MarshalIndent(out, "", "  ")
}
