package finq

import (
	"fmt"

	"repro/internal/obs"
)

// BuildInfo is the binary's identity: module version, toolchain, and VCS
// stamp when present. It also appears in every observability snapshot.
type BuildInfo = obs.BuildInfo

// Build returns the binary's build information, read from the embedded Go
// build metadata.
func Build() BuildInfo { return obs.Build() }

// Version is a one-line human-readable version string for -version flags.
func Version() string {
	b := Build()
	out := "finq " + b.Version
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " " + rev
		if b.Modified {
			out += "+dirty"
		}
	}
	if b.GoVersion != "" {
		out += fmt.Sprintf(" (%s)", b.GoVersion)
	}
	return out
}

// Stats captures a point-in-time snapshot of every observability metric:
// query-evaluation volume, quantifier-elimination growth, automata sizes,
// Turing-machine steps, and safety verdicts. See internal/obs.
func Stats() obs.Snapshot { return obs.Take() }

// StatsJSON is Stats rendered as deterministic, indented JSON.
func StatsJSON() []byte { return obs.Take().JSON() }

// SetObservability toggles metric collection process-wide (on by default)
// and returns the previous setting. With collection off the instrumented
// hot paths pay only an atomic load per would-be record.
func SetObservability(on bool) bool { return obs.SetEnabled(on) }

// ServeDebug starts the observability debug server (JSON snapshot at
// /debug/obs, expvar at /debug/vars, profiles under /debug/pprof/) on addr
// and returns the bound address; use ":0" for an ephemeral port.
func ServeDebug(addr string) (string, error) { return obs.ServeDebug(addr) }
