// Enumeration-performance benchmark: the E1 workload through three
// evaluators — the pre-optimization enumeration loop (kept here as a
// faithful reimplementation), the current loop with the decision cache
// disabled, and the current loop with the cache on. `make bench-perf` runs
// TestWriteBenchPerf, which measures all three and writes BENCH_perf.json;
// the acceptance bar is cached ≥ 2× the uncached rows/sec.
package finq

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/db"
	"repro/internal/deccache"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/presburger"
	"repro/internal/query"
)

// perfBenchRows is the E1 answer size used for the measurement: large
// enough that the quadratic effects dominate, small enough that the legacy
// variant still finishes in benchmark time.
const perfBenchRows = 32

// perfBenchStride spaces the answers out: only every fourth natural
// satisfies the query, so each row's probe scan passes (and decides) the
// failing candidates between the previous answers again. Those repeated
// ground decisions are the §1.1 hot path the cache memoizes; a dense
// answer set (every candidate satisfies) would have nothing to re-decide.
const perfBenchStride = 4

func perfBenchWorkload(tb testing.TB) (*db.State, *logic.Formula) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for i := 0; i < perfBenchRows; i++ {
		if err := st.Insert("R", domain.Int(int64(i*perfBenchStride))); err != nil {
			tb.Fatal(err)
		}
	}
	// φ(x): ∃y (R(y) ∧ x = y) — membership in the sparse stored set.
	f := logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Eq(logic.Var("x"), logic.Var("y"))))
	return st, f
}

func perfBenchBudget() query.EnumerationBudget {
	return query.EnumerationBudget{Rows: perfBenchRows + 10, Probe: 1 << 16}
}

// runPerfBench measures one variant. Each iteration constructs its decider
// from scratch, so the cached variant measures within-run memoization (the
// re-probed prefix of each row's candidate scan), never hits carried over
// from a previous iteration.
func runPerfBench(b *testing.B, dec func() domain.Decider,
	eval func(domain.Decider, *db.State, *logic.Formula) (*query.Answer, error)) {
	// The plan-caching compiler short-circuits the ground decisions this
	// benchmark exists to measure (its own speedup is bench-compile's
	// subject), so pin it off: this bench compares the interpreted
	// incremental loop with the decision cache off and on.
	prevPlan := plan.SetEnabled(false)
	defer plan.SetEnabled(prevPlan)
	st, f := perfBenchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := eval(dec(), st, f)
		if err != nil || !ans.Complete || ans.Rows.Len() != perfBenchRows {
			b.Fatalf("bad answer: %v %v", ans, err)
		}
	}
}

func evalCurrent(dec domain.Decider, st *db.State, f *logic.Formula) (*query.Answer, error) {
	return query.EnumerationAnswer(presburger.Domain{}, dec, st, f, perfBenchBudget())
}

func BenchmarkEnumPerfLegacy(b *testing.B) {
	prev := deccache.SetEnabled(false)
	defer deccache.SetEnabled(prev)
	runPerfBench(b, presburger.Decider, legacyEnumerationAnswer)
}

func BenchmarkEnumPerfNoCache(b *testing.B) {
	prev := deccache.SetEnabled(false)
	defer deccache.SetEnabled(prev)
	runPerfBench(b, presburger.Decider, evalCurrent)
}

func BenchmarkEnumPerfCached(b *testing.B) {
	prev := deccache.SetEnabled(true)
	defer deccache.SetEnabled(prev)
	runPerfBench(b, presburger.Decider, evalCurrent)
}

// TestWriteBenchPerf measures the three variants and writes
// BENCH_perf.json. Gated behind BENCH_PERF=1 (the `make bench-perf`
// target) so plain `go test` stays fast and does not rewrite the
// checked-in measurement.
func TestWriteBenchPerf(t *testing.T) {
	if os.Getenv("BENCH_PERF") == "" {
		t.Skip("set BENCH_PERF=1 (or run `make bench-perf`) to write BENCH_perf.json")
	}
	// Interleave the variants over several rounds and keep each variant's
	// fastest run — the minimum is the least-noise estimate, and
	// interleaving cancels drift between variants.
	const rounds = 3
	ns := map[string]int64{}
	allocs := map[string]int64{}
	for r := 0; r < rounds; r++ {
		for name, bench := range map[string]func(*testing.B){
			"legacy":  BenchmarkEnumPerfLegacy,
			"nocache": BenchmarkEnumPerfNoCache,
			"cached":  BenchmarkEnumPerfCached,
		} {
			res := testing.Benchmark(bench)
			if ns[name] == 0 || res.NsPerOp() < ns[name] {
				ns[name] = res.NsPerOp()
			}
			// Allocation counts are deterministic per variant (unlike wall
			// clock); keep the minimum all the same in case a round's first
			// iteration pays one-time warmup allocations.
			if allocs[name] == 0 || res.AllocsPerOp() < allocs[name] {
				allocs[name] = res.AllocsPerOp()
			}
		}
	}
	rowsPerSec := func(name string) float64 {
		return float64(perfBenchRows) / (float64(ns[name]) / 1e9)
	}

	// One instrumented pass for the cache hit rate of a single E1 run,
	// on the same interpreted path as the timed variants (planner off).
	prevPlan := plan.SetEnabled(false)
	prev := deccache.SetEnabled(true)
	st, f := perfBenchWorkload(t)
	dec := presburger.Decider()
	if _, err := evalCurrent(dec, st, f); err != nil {
		t.Fatal(err)
	}
	deccache.SetEnabled(prev)
	plan.SetEnabled(prevPlan)
	hits, misses, _, _ := dec.(*deccache.Cache).Stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses) * 100
	}

	// allocBudget is the hot-path allocation-discipline bar: it runs on
	// the default production configuration (plan-caching compiler on,
	// decision cache on — the path finqd actually serves), where the
	// cached E1 enumeration sits around 16.2k allocs/op, and holds ~11%
	// headroom. Allocation counts are deterministic, so any
	// instrumentation added to the eval hot path (per-span identity
	// minting included) that allocates per candidate or per span shows up
	// here as a hard CI failure, not as timing noise. The interpreted
	// variants above are reported for information only — that baseline is
	// allocation-heavy by design (per-candidate formula substitution).
	const allocBudget = 18_000
	defaultRes := testing.Benchmark(func(b *testing.B) {
		prevC := deccache.SetEnabled(true)
		defer deccache.SetEnabled(prevC)
		st, f := perfBenchWorkload(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ans, err := evalCurrent(presburger.Decider(), st, f)
			if err != nil || !ans.Complete || ans.Rows.Len() != perfBenchRows {
				b.Fatalf("bad answer: %v %v", ans, err)
			}
		}
	})
	allocsDefault := defaultRes.AllocsPerOp()

	speedupCached := float64(ns["nocache"]) / float64(ns["cached"])
	speedupTotal := float64(ns["legacy"]) / float64(ns["cached"])
	out := map[string]any{
		"benchmark":                 fmt.Sprintf("query.EnumerationAnswer, E1 workload (%d rows over N with Presburger QE)", perfBenchRows),
		"rows":                      perfBenchRows,
		"rounds":                    rounds,
		"ns_per_op_legacy":          ns["legacy"],
		"ns_per_op_nocache":         ns["nocache"],
		"ns_per_op_cached":          ns["cached"],
		"rows_per_sec_legacy":       rowsPerSec("legacy"),
		"rows_per_sec_nocache":      rowsPerSec("nocache"),
		"rows_per_sec_cached":       rowsPerSec("cached"),
		"allocs_per_op_legacy":      allocs["legacy"],
		"allocs_per_op_nocache":     allocs["nocache"],
		"allocs_per_op_cached":      allocs["cached"],
		"allocs_per_op_default":     allocsDefault,
		"ns_per_op_default":         defaultRes.NsPerOp(),
		"allocs_per_op_budget":      allocBudget,
		"speedup_cached_vs_nocache": speedupCached,
		"speedup_total_vs_legacy":   speedupTotal,
		"cache_hit_rate_pct":        hitRate,
		"note":                      "min ns/op over interleaved rounds, plan-caching compiler pinned off for legacy/nocache/cached (it bypasses the ground decisions this bench measures; bench-compile covers it); legacy = pre-optimization loop (exclusion conjunction rebuilt per row, probes decide the excluded formula, from-scratch tuple indexing); nocache = incremental loop, decision cache off; cached = incremental loop plus memoized decider (fresh cache per iteration); default = production configuration (plan compiler + decision cache on). Bars: cached >= 2x nocache rows/sec, default allocs/op within the allocation budget",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_perf.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_perf.json: legacy %d ns/op, nocache %d ns/op, cached %d ns/op (%.2fx vs nocache, %.2fx vs legacy, hit rate %.1f%%), default %d ns/op %d allocs/op\n",
		ns["legacy"], ns["nocache"], ns["cached"], speedupCached, speedupTotal, hitRate, defaultRes.NsPerOp(), allocsDefault)
	if speedupCached < 2.0 {
		t.Errorf("cache + incremental enumeration speedup %.2fx below the 2x acceptance bar", speedupCached)
	}
	if allocsDefault > allocBudget {
		t.Errorf("default-path enumeration allocates %d allocs/op, over the %d budget — the eval hot path grew per-candidate allocations",
			allocsDefault, allocBudget)
	}
}

// legacyEnumerationAnswer reimplements the enumeration loop as it stood
// before the incremental rework, as the benchmark baseline: the exclusion
// conjunction is rebuilt from φ' on every iteration, the probe scan
// decides the full excluded formula for every candidate (found rows
// included), and candidate tuples come from the from-scratch index
// decoder. Answers are identical to the optimized loop; only the cost
// structure differs.
func legacyEnumerationAnswer(dec domain.Decider, st *db.State, f *logic.Formula) (*query.Answer, error) {
	dom := presburger.Domain{}
	budget := perfBenchBudget()
	pure, err := query.Translate(dom, st, f)
	if err != nil {
		return nil, err
	}
	vars := pure.FreeVars()
	ans := &query.Answer{Vars: vars, Rows: db.NewRelation(len(vars)), Complete: false}
	var found []db.Tuple
	for len(found) < budget.Rows {
		remaining := pure
		for _, row := range found {
			var eqs []*logic.Formula
			for i, name := range vars {
				eqs = append(eqs, logic.Eq(logic.Var(name), logic.Const(dom.ConstName(row[i]))))
			}
			remaining = logic.And(remaining, logic.Not(logic.And(eqs...)))
		}
		more, err := dec.Decide(logic.ExistsAll(vars, remaining))
		if err != nil {
			return nil, err
		}
		if !more {
			ans.Complete = true
			return ans, nil
		}
		row, err := legacyNextRow(dom, dec, remaining, vars, budget.Probe)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return ans, nil
		}
		found = append(found, row)
		if err := ans.Rows.Add(row); err != nil {
			return nil, err
		}
	}
	return ans, nil
}

func legacyNextRow(dom presburger.Domain, dec domain.Decider, pure *logic.Formula,
	vars []string, probe int) (db.Tuple, error) {

	k := len(vars)
	for i := 0; i < probe; i++ {
		idx := legacyTupleIndices(k, i)
		tuple := make(db.Tuple, k)
		ground := pure
		for j, name := range vars {
			v := dom.Element(idx[j])
			tuple[j] = v
			ground = logic.Subst(ground, name, logic.Const(dom.ConstName(v)))
		}
		ok, err := dec.Decide(ground)
		if err != nil {
			return nil, err
		}
		if ok {
			return tuple, nil
		}
	}
	return nil, nil
}

// legacyTupleIndices is the from-scratch ℕ^k index decoder the optimized
// loop replaced with a stateful generator (a copy of the unexported
// original, which lives on in internal/query as the generator's oracle).
func legacyTupleIndices(k, n int) []int {
	if k == 1 {
		return []int{n}
	}
	m := 0
	block := 1
	rem := n
	for rem >= block {
		rem -= block
		m++
		b := 1
		c := 1
		for i := 0; i < k; i++ {
			b *= m + 1
			c *= m
		}
		block = b - c
	}
	total := 1
	for i := 0; i < k; i++ {
		total *= m + 1
	}
	count := -1
	for code := 0; code < total; code++ {
		t := make([]int, k)
		c := code
		for i := k - 1; i >= 0; i-- {
			t[i] = c % (m + 1)
			c /= m + 1
		}
		hasMax := false
		for _, x := range t {
			if x == m {
				hasMax = true
				break
			}
		}
		if !hasMax {
			continue
		}
		count++
		if count == rem {
			return t
		}
	}
	panic("legacy tuple enumeration out of range")
}
